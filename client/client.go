// Package client is the Go client for dytis-server, speaking the
// length-prefixed binary protocol of internal/proto with request
// pipelining, connection pooling, batch helpers, context-based timeouts,
// and bounded reconnect with exponential backoff.
//
// A Client is safe for concurrent use and that is the intended way to use
// it: goroutines issuing requests on the same Client share its pooled
// connections, and because every request carries an id that the server
// echoes, many requests ride one connection concurrently — the write side
// interleaves frames, the read loop routes each response to its waiter. A
// single goroutine gets pipelining for free the same way by issuing batch
// calls (GetBatch/InsertBatch/DeleteBatch), which amortize both framing and
// the server's per-op dispatch.
//
// Error semantics: an operation fails with the server's error for rejected
// requests, with ctx.Err() on timeout/cancellation, and with a connection
// error when the link dies mid-flight (e.g. the server restarts). The
// client never silently retries an operation after its bytes may have
// reached the server — a failed Insert may or may not have applied, and
// only the caller knows whether re-issuing is safe — but the next operation
// on the client transparently redials (bounded attempts, exponential
// backoff), so a restarted server resumes service without new Dial calls.
//
//	c, err := client.Dial("127.0.0.1:7070")
//	defer c.Close()
//	err = c.Insert(ctx, 42, 1)
//	v, ok, err := c.Get(ctx, 42)
//	keys, vals, err := c.Scan(ctx, 0, 100)
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dytis/internal/proto"
)

// ErrClosed is returned by operations on a Client after Close.
var ErrClosed = errors.New("client: closed")

// Option configures a Client at Dial time.
type Option func(*options)

type options struct {
	poolSize    int
	pipeline    int
	dialTimeout time.Duration
	reqTimeout  time.Duration
	redials     int
	backoffMin  time.Duration
	backoffMax  time.Duration
}

func defaultOptions() options {
	return options{
		poolSize:    2,
		pipeline:    128,
		dialTimeout: 5 * time.Second,
		reqTimeout:  0, // context-only by default
		redials:     4,
		backoffMin:  25 * time.Millisecond,
		backoffMax:  1 * time.Second,
	}
}

// WithPoolSize sets how many connections the client keeps to the server
// (default 2). Requests are spread round-robin; more connections help many
// goroutines more than they help one.
func WithPoolSize(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithPipeline caps the requests one connection keeps in flight (default
// 128); at the cap, callers block until a response frees a slot.
func WithPipeline(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.pipeline = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithRequestTimeout applies a default per-request deadline when the
// caller's context has none (default: none — the context rules).
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.reqTimeout = d
		}
	}
}

// WithReconnect bounds transparent redialing of a broken pool slot:
// attempts tries per operation, with exponential backoff from min to max
// between consecutive failures of that slot (defaults: 4 tries, 25ms–1s).
func WithReconnect(attempts int, min, max time.Duration) Option {
	return func(o *options) {
		if attempts > 0 {
			o.redials = attempts
		}
		if min > 0 {
			o.backoffMin = min
		}
		if max >= min && max > 0 {
			o.backoffMax = max
		}
	}
}

// Client is a pooled, pipelining dytis-server client. Create with Dial; all
// methods are safe for concurrent use.
type Client struct {
	addr string
	o    options

	mu     sync.Mutex
	slots  []*slot
	rr     uint64
	closed bool
}

// slot is one pool position: a live connection, or a cooldown record from
// its last failure that the next user must respect before redialing.
type slot struct {
	mu       sync.Mutex
	cc       *clientConn
	failures int       // consecutive dial/IO failures
	lastFail time.Time // when the last one happened
}

// Dial connects to a dytis-server at addr. The first connection is
// established eagerly so an unreachable address fails here, not on the
// first operation.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, apply := range opts {
		apply(&o)
	}
	c := &Client{addr: addr, o: o, slots: make([]*slot, o.poolSize)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	cc, err := dialConn(addr, o)
	if err != nil {
		return nil, err
	}
	c.slots[0].cc = cc
	return c, nil
}

// Close shuts the client down: all pooled connections close and their
// in-flight requests fail. Close is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	slots := c.slots
	c.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		if s.cc != nil {
			s.cc.fail(ErrClosed)
			s.cc = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// conn returns a live connection from the pool, redialing its slot if the
// previous connection died — waiting out the slot's backoff first, bounded
// by both the reconnect budget and ctx.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.rr++
	s := c.slots[c.rr%uint64(len(c.slots))]
	c.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cc != nil && !s.cc.broken() {
		return s.cc, nil
	}
	s.cc = nil
	var lastErr error
	for try := 0; try < c.o.redials; try++ {
		if wait := c.backoff(s); wait > 0 {
			s.mu.Unlock()
			err := sleepCtx(ctx, wait)
			s.mu.Lock()
			if err != nil {
				return nil, err
			}
			if s.cc != nil && !s.cc.broken() { // another goroutine redialed
				return s.cc, nil
			}
		}
		cc, err := dialConn(c.addr, c.o)
		if err != nil {
			lastErr = err
			s.failures++
			s.lastFail = time.Now()
			continue
		}
		s.cc = cc
		s.failures = 0
		return cc, nil
	}
	return nil, fmt.Errorf("client: reconnect to %s failed after %d attempts: %w", c.addr, c.o.redials, lastErr)
}

// backoff returns how long the slot's cooldown still has to run.
func (c *Client) backoff(s *slot) time.Duration {
	if s.failures == 0 {
		return 0
	}
	d := c.o.backoffMin << (s.failures - 1)
	if d > c.o.backoffMax || d <= 0 {
		d = c.o.backoffMax
	}
	if elapsed := time.Since(s.lastFail); elapsed < d {
		return d - elapsed
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do sends req on a pooled connection and waits for its response.
func (c *Client) do(ctx context.Context, req *proto.Request) (*proto.Response, error) {
	if c.o.reqTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.o.reqTimeout)
			defer cancel()
		}
	}
	cc, err := c.conn(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := cc.do(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- operations -------------------------------------------------------------

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpPing})
	return err
}

// Get returns the value stored under key and whether it exists.
func (c *Client) Get(ctx context.Context, key uint64) (uint64, bool, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Found, nil
}

// Insert stores or updates value under key.
func (c *Client) Insert(ctx context.Context, key, value uint64) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpInsert, Key: key, Val: value})
	return err
}

// Delete removes key, reporting whether it was present.
func (c *Client) Delete(ctx context.Context, key uint64) (bool, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// Scan returns up to max pairs with key >= start in ascending key order, as
// parallel key/value slices. max is capped by the protocol at proto.MaxScan
// (65536); page with the last key + 1 to go further.
func (c *Client) Scan(ctx context.Context, start uint64, max int) (keys, vals []uint64, err error) {
	if max < 0 {
		max = 0
	}
	if max > proto.MaxScan {
		max = proto.MaxScan
	}
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpScan, Key: start, Max: uint32(max)})
	if err != nil {
		return nil, nil, err
	}
	return resp.Keys, resp.Vals, nil
}

// GetBatch looks up every key of keys in one round trip, returning parallel
// result slices (vals[i], found[i] answer keys[i]). At most proto.MaxBatch
// (65536) keys per call.
func (c *Client) GetBatch(ctx context.Context, keys []uint64) (vals []uint64, found []bool, err error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpGetBatch, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	return resp.Vals, resp.Founds, nil
}

// InsertBatch stores vals[i] under keys[i] for every i in one round trip.
// At most proto.MaxBatch pairs per call; the batch is not atomic on the
// server, it is an amortization.
func (c *Client) InsertBatch(ctx context.Context, keys, vals []uint64) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpInsertBatch, Keys: keys, Vals: vals})
	return err
}

// DeleteBatch removes every key of keys in one round trip, returning
// whether each was present.
func (c *Client) DeleteBatch(ctx context.Context, keys []uint64) ([]bool, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpDeleteBatch, Keys: keys})
	if err != nil {
		return nil, err
	}
	return resp.Founds, nil
}

// Len returns the number of live keys in the served index.
func (c *Client) Len(ctx context.Context) (int, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpLen})
	if err != nil {
		return 0, err
	}
	return int(resp.Val), nil
}
