// Package btree implements an in-memory B+-tree in the style of the STX
// B+-tree, the traditional ordered-index baseline of the DyTIS paper
// (§4.1: fanout 128, in-place updates enabled).
//
// Keys live only in the leaves, which are linked left-to-right so scans walk
// leaves sequentially; inner nodes carry separator keys. The tree is not safe
// for concurrent use.
package btree

import (
	"sort"

	"dytis/internal/kv"
)

// DefaultOrder is the fanout the paper found best for its setup.
const DefaultOrder = 128

type node struct {
	keys []uint64
	// leaf fields
	vals []uint64
	next *node
	// inner fields
	kids []*node
	leaf bool
}

// Tree is a B+-tree with configurable fanout.
type Tree struct {
	root  *node
	order int // max children of an inner node; max entries of a leaf
	n     int
}

// New returns an empty tree. order <= 3 selects DefaultOrder.
func New(order int) *Tree {
	if order <= 3 {
		order = DefaultOrder
	}
	return &Tree{
		root:  &node{leaf: true, keys: make([]uint64, 0, order), vals: make([]uint64, 0, order)},
		order: order,
	}
}

func (t *Tree) maxLeaf() int      { return t.order }
func (t *Tree) maxInnerKeys() int { return t.order - 1 }

// childIndex routes key k: returns the child index whose subtree contains k.
func childIndex(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return k < keys[i] })
}

// leafPos returns the position of k in a leaf and whether it is present.
func leafPos(keys []uint64, k uint64) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i, i < len(keys) && keys[i] == k
}

// Get returns the value stored for key.
func (t *Tree) Get(key uint64) (uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[childIndex(n.keys, key)]
	}
	if i, ok := leafPos(n.keys, key); ok {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores or updates key.
func (t *Tree) Insert(key, value uint64) {
	sep, right, added := t.insert(t.root, key, value)
	if added {
		t.n++
	}
	if right != nil {
		nr := &node{
			keys: make([]uint64, 1, t.order),
			kids: make([]*node, 2, t.order+1),
		}
		nr.keys[0] = sep
		nr.kids[0], nr.kids[1] = t.root, right
		t.root = nr
	}
}

func (t *Tree) insert(n *node, key, value uint64) (sep uint64, right *node, added bool) {
	if n.leaf {
		i, ok := leafPos(n.keys, key)
		if ok {
			n.vals[i] = value
			return 0, nil, false
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i], n.vals[i] = key, value
		if len(n.keys) > t.maxLeaf() {
			sep, right = t.splitLeaf(n)
		}
		return sep, right, true
	}
	ci := childIndex(n.keys, key)
	csep, cright, added := t.insert(n.kids[ci], key, value)
	if cright != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = csep
		n.kids = append(n.kids, nil)
		copy(n.kids[ci+2:], n.kids[ci+1:])
		n.kids[ci+1] = cright
		if len(n.keys) > t.maxInnerKeys() {
			sep, right = t.splitInner(n)
		}
	}
	return sep, right, added
}

func (t *Tree) splitLeaf(n *node) (uint64, *node) {
	mid := len(n.keys) / 2
	r := &node{
		leaf: true,
		keys: make([]uint64, len(n.keys)-mid, t.order),
		vals: make([]uint64, len(n.keys)-mid, t.order),
		next: n.next,
	}
	copy(r.keys, n.keys[mid:])
	copy(r.vals, n.vals[mid:])
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = r
	return r.keys[0], r
}

func (t *Tree) splitInner(n *node) (uint64, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	r := &node{
		keys: make([]uint64, len(n.keys)-mid-1, t.order),
		kids: make([]*node, len(n.kids)-mid-1, t.order+1),
	}
	copy(r.keys, n.keys[mid+1:])
	copy(r.kids, n.kids[mid+1:])
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return sep, r
}

// Delete removes key, rebalancing on underflow.
func (t *Tree) Delete(key uint64) bool {
	ok := t.delete(t.root, key)
	if ok {
		t.n--
	}
	// Collapse a root inner node with a single child.
	if !t.root.leaf && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
	}
	return ok
}

func (t *Tree) minLeaf() int      { return t.order / 2 }
func (t *Tree) minInnerKids() int { return (t.order + 1) / 2 }

func (t *Tree) delete(n *node, key uint64) bool {
	if n.leaf {
		i, ok := leafPos(n.keys, key)
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	ci := childIndex(n.keys, key)
	c := n.kids[ci]
	if !t.delete(c, key) {
		return false
	}
	if c.leaf && len(c.keys) < t.minLeaf() || !c.leaf && len(c.kids) < t.minInnerKids() {
		t.rebalance(n, ci)
	}
	return true
}

// rebalance fixes child ci of n after an underflow by borrowing from a
// sibling or merging with one.
func (t *Tree) rebalance(n *node, ci int) {
	c := n.kids[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		l := n.kids[ci-1]
		if l.leaf && len(l.keys) > t.minLeaf() {
			last := len(l.keys) - 1
			c.keys = append([]uint64{l.keys[last]}, c.keys...)
			c.vals = append([]uint64{l.vals[last]}, c.vals...)
			l.keys = l.keys[:last]
			l.vals = l.vals[:last]
			n.keys[ci-1] = c.keys[0]
			return
		}
		if !l.leaf && len(l.kids) > t.minInnerKids() {
			lastK := len(l.keys) - 1
			c.keys = append([]uint64{n.keys[ci-1]}, c.keys...)
			c.kids = append([]*node{l.kids[len(l.kids)-1]}, c.kids...)
			n.keys[ci-1] = l.keys[lastK]
			l.keys = l.keys[:lastK]
			l.kids = l.kids[:len(l.kids)-1]
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.kids)-1 {
		r := n.kids[ci+1]
		if r.leaf && len(r.keys) > t.minLeaf() {
			c.keys = append(c.keys, r.keys[0])
			c.vals = append(c.vals, r.vals[0])
			r.keys = r.keys[1:]
			r.vals = r.vals[1:]
			n.keys[ci] = r.keys[0]
			return
		}
		if !r.leaf && len(r.kids) > t.minInnerKids() {
			c.keys = append(c.keys, n.keys[ci])
			c.kids = append(c.kids, r.kids[0])
			n.keys[ci] = r.keys[0]
			r.keys = r.keys[1:]
			r.kids = r.kids[1:]
			return
		}
	}
	// Merge with a sibling. Prefer merging c into its left sibling.
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge combines kids[i] and kids[i+1] of n into kids[i].
func (t *Tree) merge(n *node, i int) {
	l, r := n.kids[i], n.kids[i+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
		l.next = r.next
	} else {
		l.keys = append(l.keys, n.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.kids = append(l.kids, r.kids...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.kids = append(n.kids[:i+1], n.kids[i+2:]...)
}

// Scan appends up to max pairs with key >= start to dst in ascending order.
func (t *Tree) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	n := t.root
	for !n.leaf {
		n = n.kids[childIndex(n.keys, start)]
	}
	i, _ := leafPos(n.keys, start)
	for n != nil && max > 0 {
		for ; i < len(n.keys) && max > 0; i++ {
			dst = append(dst, kv.KV{Key: n.keys[i], Value: n.vals[i]})
			max--
		}
		n = n.next
		i = 0
	}
	return dst
}

// Len returns the number of live keys.
func (t *Tree) Len() int { return t.n }

// Height returns the tree height (1 for a lone leaf); used by tests and the
// structural-overhead analysis in §4.3.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.kids[0] {
		h++
	}
	return h
}

// BulkLoad replaces the tree contents with the given ascending keys, packing
// leaves to ~90% fill — the standard bulk-load fast path.
func (t *Tree) BulkLoad(keys []uint64, values []uint64) {
	if len(keys) != len(values) {
		panic("btree: mismatched bulk-load slices")
	}
	fill := t.order * 9 / 10
	if fill < 1 {
		fill = 1
	}
	var leaves []*node
	for i := 0; i < len(keys); i += fill {
		end := i + fill
		if end > len(keys) {
			end = len(keys)
		}
		l := &node{leaf: true,
			keys: append(make([]uint64, 0, t.order), keys[i:end]...),
			vals: append(make([]uint64, 0, t.order), values[i:end]...),
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = l
		}
		leaves = append(leaves, l)
	}
	t.n = len(keys)
	if len(leaves) == 0 {
		t.root = &node{leaf: true, keys: make([]uint64, 0, t.order), vals: make([]uint64, 0, t.order)}
		return
	}
	// Build inner levels bottom-up.
	level := leaves
	for len(level) > 1 {
		var up []*node
		for i := 0; i < len(level); i += t.order {
			end := i + t.order
			if end > len(level) {
				end = len(level)
			}
			in := &node{
				kids: append(make([]*node, 0, t.order+1), level[i:end]...),
			}
			for j := i + 1; j < end; j++ {
				in.keys = append(in.keys, minKey(level[j]))
			}
			up = append(up, in)
		}
		// Avoid a trailing inner node with a single child and no keys.
		if len(up) > 1 {
			last := up[len(up)-1]
			if len(last.kids) == 1 {
				prev := up[len(up)-2]
				prev.keys = append(prev.keys, minKey(last.kids[0]))
				prev.kids = append(prev.kids, last.kids[0])
				up = up[:len(up)-1]
			}
		}
		level = up
	}
	t.root = level[0]
}

func minKey(n *node) uint64 {
	for !n.leaf {
		n = n.kids[0]
	}
	return n.keys[0]
}
