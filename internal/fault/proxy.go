package fault

import (
	"io"
	"net"
	"sync"
)

// Proxy is an in-process TCP proxy that forwards every accepted connection
// to an upstream address through the Injector's chaos conns, in both
// directions. Pointing a real client at Proxy.Addr() subjects the whole
// serving stack — client encoder, server decoder, and both framing layers —
// to the fault plan without either end needing test hooks.
//
// Each proxied connection uses two injected conns (one per direction), so a
// fault on the client→server path is independent of the server→client path,
// exactly like asymmetric real-world packet damage.
type Proxy struct {
	ln       net.Listener
	upstream string
	inj      *Injector

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded-by: mu
	closed bool                  // guarded-by: mu

	wg sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards to upstream
// through inj's faults. Close releases the listener and every live link.
func NewProxy(upstream string, inj *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, upstream: upstream, inj: inj, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		up, err := net.Dial("tcp", p.upstream)
		if err != nil {
			down.Close()
			continue
		}
		if !p.track(down, up) {
			down.Close()
			up.Close()
			return
		}
		p.wg.Add(2)
		// Writes carry the faults: wrap each direction's destination.
		go p.pipe(p.inj.Wrap(up), down)
		go p.pipe(p.inj.Wrap(down), up)
	}
}

// pipe copies src into dst until either side dies, then closes both so the
// peer goroutine unblocks too.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 16<<10)
	io.CopyBuffer(dst, src, buf)
	dst.Close()
	src.Close()
}

// track registers a proxied pair, refusing when the proxy is closed.
func (p *Proxy) track(cs ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	for _, c := range cs {
		p.conns[c] = struct{}{}
	}
	return true
}

// Close stops accepting, severs every proxied link, and waits for the
// forwarding goroutines to end. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}
