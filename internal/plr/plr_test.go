package plr

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// segmentFor returns the segment covering x (by StartX..EndX), or nil.
func segmentFor(segs []Segment, x float64) *Segment {
	for i := range segs {
		if x >= segs[i].StartX && x <= segs[i].EndX {
			return &segs[i]
		}
	}
	return nil
}

func TestPerfectLineUsesOneSegment(t *testing.T) {
	f := NewFitter(0.5)
	for i := 0; i < 1000; i++ {
		f.Add(float64(i), 3*float64(i)+7)
	}
	segs := f.Finish()
	if len(segs) != 1 {
		t.Fatalf("want 1 segment for a perfect line, got %d", len(segs))
	}
	if math.Abs(segs[0].Slope-3) > 1e-9 {
		t.Fatalf("slope = %v, want 3", segs[0].Slope)
	}
	if segs[0].N != 1000 {
		t.Fatalf("N = %d, want 1000", segs[0].N)
	}
}

func TestErrorBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const eps = 2.0
	xs := make([]float64, 0, 2000)
	ys := make([]float64, 0, 2000)
	y := 0.0
	for i := 0; i < 2000; i++ {
		xs = append(xs, float64(i))
		y += rng.Float64() * 3 // monotone noisy "CDF"
		ys = append(ys, y)
	}
	segs := Fit(xs, ys, eps)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	for i := range xs {
		s := segmentFor(segs, xs[i])
		if s == nil {
			t.Fatalf("no segment covers x=%v", xs[i])
		}
		if d := math.Abs(s.Eval(xs[i]) - ys[i]); d > eps+1e-9 {
			t.Fatalf("error %v > eps %v at x=%v", d, eps, xs[i])
		}
	}
}

func TestStepFunctionNeedsManySegments(t *testing.T) {
	// A hard step every 10 points cannot be covered by few lines with a
	// tight bound.
	f := NewFitter(0.1)
	for i := 0; i < 100; i++ {
		f.Add(float64(i), float64((i/10)*1000))
	}
	segs := f.Finish()
	if len(segs) < 9 {
		t.Fatalf("want >=9 segments for steps, got %d", len(segs))
	}
}

func TestSegmentsPartitionInput(t *testing.T) {
	f := NewFitter(1.0)
	n := 500
	for i := 0; i < n; i++ {
		f.Add(float64(i), math.Sqrt(float64(i))*40)
	}
	segs := f.Finish()
	total := 0
	for i, s := range segs {
		total += s.N
		if i > 0 && s.StartX <= segs[i-1].EndX {
			t.Fatalf("segment %d overlaps previous", i)
		}
	}
	if total != n {
		t.Fatalf("segments cover %d points, want %d", total, n)
	}
}

func TestFitCDFSkipsDuplicates(t *testing.T) {
	keys := []uint64{1, 1, 2, 2, 3, 10, 10, 11}
	segs := FitCDF(keys, 100)
	n := 0
	for _, s := range segs {
		n += s.N
	}
	if n != 5 { // unique keys: 1,2,3,10,11
		t.Fatalf("covered %d points, want 5 unique", n)
	}
}

func TestNonIncreasingXPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing x")
		}
	}()
	f := NewFitter(1)
	f.Add(1, 1)
	f.Add(1, 2)
}

func TestNegativeErrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative maxErr")
		}
	}()
	NewFitter(-1)
}

func TestFitterReusableAfterFinish(t *testing.T) {
	f := NewFitter(0.5)
	f.Add(0, 0)
	f.Add(1, 1)
	if got := len(f.Finish()); got != 1 {
		t.Fatalf("first finish: %d segments", got)
	}
	f.Add(5, 5)
	f.Add(6, 9)
	segs := f.Finish()
	if len(segs) == 0 || segs[0].StartX != 5 {
		t.Fatalf("fitter not reusable: %+v", segs)
	}
}

// Property: for any random monotone series, every point is within the bound
// of its covering segment, and segments jointly cover all points.
func TestQuickErrorBound(t *testing.T) {
	prop := func(seed int64, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := float64(epsRaw%50) + 0.5
		n := 50 + rng.Intn(300)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := 0.0, 0.0
		for i := 0; i < n; i++ {
			x += 1 + rng.Float64()*5
			y += rng.Float64() * 10
			xs[i], ys[i] = x, y
		}
		segs := Fit(xs, ys, eps)
		covered := 0
		for _, s := range segs {
			covered += s.N
		}
		if covered != n {
			return false
		}
		for i := range xs {
			s := segmentFor(segs, xs[i])
			if s == nil || math.Abs(s.Eval(xs[i])-ys[i]) > eps+1e-6 {
				return false
			}
		}
		// Segments must be sorted by StartX.
		return sort.SliceIsSorted(segs, func(a, b int) bool {
			return segs[a].StartX < segs[b].StartX
		})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
