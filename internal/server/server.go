// Package server is the network serving subsystem: it exposes a DyTIS index
// over the length-prefixed binary protocol of internal/proto with request
// pipelining, per-connection read/write goroutines, batched opcodes,
// connection limits with accept-side backpressure, and graceful drain.
//
// Concurrency model, per connection:
//
//	read loop ──decode──► handle (index op) ──encode──► out chan ──► write loop
//
// The read loop decodes and executes requests back-to-back without waiting
// for the client to consume responses — that is what makes client-side
// pipelining effective — and hands each encoded response to the write loop
// over a bounded channel. The chain is self-throttling end to end: a client
// that stops reading stalls the write loop on TCP, which fills the out
// channel, which blocks the read loop, which fills the client's send window.
// No per-connection buffering grows beyond the channel's Pipeline frames.
//
// Because every index operation a connection issues runs on that
// connection's read-loop goroutine, the server is exactly the multi-client
// adversarial workload the Concurrent index was built for: N connections =
// N goroutines hammering Get/Insert/Delete/Scan (the optimistic read path
// included) with no additional synchronization in this package.
//
// Graceful drain (Shutdown): the listener closes first (no new
// connections), then every connection's read deadline is pulled to "now".
// Requests already buffered keep executing and their responses flush before
// the connection closes — a pipelining client receives an answer for
// everything the server read off the wire — and Shutdown returns when every
// connection has drained, or forcibly closes the stragglers when its
// context expires.
package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dytis/internal/cluster"
	"dytis/internal/kv"
)

// The serving stack promises deadline propagation end to end; ctxcheck
// (tools/analyzers) enforces it package-wide.
//
//dytis:ctxcheck

// Index is the index surface the server serves; *core.DyTIS (and therefore
// the public dytis.Index) implements it, as does the durable wal.Store
// adapter. The index must be safe for concurrent use: every connection
// drives it from its own goroutine. The batch mutation paths may fail
// (closed index, write-ahead-log append failure); a non-nil error is
// answered as StatusErr on that request, nothing is retried server-side.
type Index interface {
	Get(key uint64) (uint64, bool)
	Insert(key, value uint64)
	Delete(key uint64) bool
	Scan(start uint64, max int, dst []kv.KV) []kv.KV
	GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool)
	InsertBatch(keys, vals []uint64) error
	DeleteBatch(keys []uint64, found []bool) ([]bool, error)
	Len() int
}

// Config configures a Server; Index is the only required field.
type Config struct {
	Index Index
	// MaxConns caps simultaneously served connections (default 256). At the
	// cap, further clients queue in the kernel accept backlog instead of
	// being accepted and starved — backpressure, not load shedding.
	MaxConns int
	// Pipeline is the per-connection bound on encoded responses queued
	// between the read and write loops (default 128).
	Pipeline int
	// Metrics, when non-nil, records server-side per-opcode latencies and
	// connection counters (see metrics.go).
	Metrics *Metrics
	// Logf, when non-nil, receives one line per abnormal connection end.
	Logf func(format string, args ...any)

	// Cluster, when non-nil, makes this a shard server: every data
	// operation routes through the node's ownership check (out-of-range
	// keys answer StatusWrongShard with the current map attached), and the
	// cluster opcode family unlocks behind FeatCluster. Nil serves the
	// whole key space exactly as before, and FeatCluster is never granted.
	Cluster *cluster.Node

	// IdleTimeout bounds how long a connection may sit between requests
	// (measured to the arrival of the next frame header). Zero disables it.
	IdleTimeout time.Duration
	// ReadTimeout bounds reading one frame's body once its header has
	// arrived — the slow-loris defense: a peer trickling a frame byte by
	// byte is reaped after ReadTimeout while other connections keep
	// serving. Zero disables it.
	ReadTimeout time.Duration
	// WriteTimeout bounds each write of queued response bytes to the
	// socket. Zero disables it.
	WriteTimeout time.Duration

	// MaxInflight caps requests executing concurrently across all
	// connections — admission control. At the cap an arriving request
	// waits for a slot only as long as its own propagated deadline budget
	// (or RetryAfter, if it carried none) allows, then is shed with
	// StatusOverload and a retry-after hint instead of queueing
	// unboundedly. Zero disables shedding (connection backpressure still
	// bounds memory).
	MaxInflight int
	// RetryAfter is the hint sent with StatusOverload responses and the
	// slot-wait bound for requests without a deadline budget (default
	// 100ms when MaxInflight is set).
	RetryAfter time.Duration

	// WrapConn, when non-nil, wraps every accepted connection before it is
	// served — the fault-injection seam (internal/fault.Injector.Wrap).
	// Nil costs nothing.
	WrapConn func(net.Conn) net.Conn

	// DisableV2 makes the server behave byte-identically to a pre-v2 build:
	// an OpHello (or any other v2 opcode) is answered exactly like an
	// unknown opcode was before the handshake existed — StatusBadRequest and
	// a closed connection — so a v2 client falls back to plain v1. It exists
	// for the compat test matrix and as an operational escape hatch
	// (dytis-server -disable-v2).
	DisableV2 bool
}

// ErrOverload is the server-side name for an admission-control shed; it is
// what a rejected request's StatusOverload response means. (The client
// package surfaces its own typed overload error with the parsed
// retry-after hint.)
var ErrOverload = errors.New("server: overloaded")

// ErrServerClosed is returned by Serve after Shutdown, mirroring net/http.
var ErrServerClosed = errors.New("server: closed")

// Server serves one Index over one listener. Create with New, run with
// Serve, stop with Shutdown.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener       // guarded-by: mu
	conns    map[*conn]struct{} // guarded-by: mu
	draining bool               // guarded-by: mu
	serving  atomic.Bool        // set once Serve has a listener

	// inflight is the admission-control semaphore (nil when MaxInflight is
	// 0): a slot is held for the duration of one request's index work.
	inflight chan struct{}

	closed chan struct{} // closed when Shutdown begins
	wg     sync.WaitGroup
}

// Ready reports whether the server is accepting and serving requests: true
// between Serve acquiring its listener and Shutdown beginning. It is the
// readiness-probe answer (/healthz in cmd/dytis-server).
func (s *Server) Ready() bool {
	return s.serving.Load() && !s.Draining()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.Index == nil {
		panic("server: Config.Index is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 128
	}
	if cfg.MaxInflight > 0 && cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 100 * time.Millisecond
	}
	s := &Server{
		cfg:    cfg,
		conns:  make(map[*conn]struct{}),
		closed: make(chan struct{}),
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	return s
}

// Serve accepts connections on ln until Shutdown (returning ErrServerClosed)
// or an unrecoverable accept error. The listener is closed on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.serving.Store(true)
	defer ln.Close()

	sem := make(chan struct{}, s.cfg.MaxConns)
	for {
		// Acquire a connection slot before accepting: at MaxConns the accept
		// loop itself blocks and new clients wait in the listen backlog.
		select {
		case sem <- struct{}{}:
		case <-s.closed:
			return ErrServerClosed
		}
		nc, err := ln.Accept()
		if err != nil {
			<-sem
			select {
			case <-s.closed:
				return ErrServerClosed
			default:
				return err
			}
		}
		raddr := nc.RemoteAddr().String()
		if s.cfg.WrapConn != nil {
			nc = s.cfg.WrapConn(nc)
		}
		c := &conn{srv: s, nc: nc, raddr: raddr}
		if !s.track(c) { // lost the race with Shutdown
			nc.Close()
			<-sem
			return ErrServerClosed
		}
		if m := s.cfg.Metrics; m != nil {
			m.connAccepted()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-sem }()
			c.serve()
			s.untrack(c)
			if m := s.cfg.Metrics; m != nil {
				m.connClosed()
			}
		}()
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown gracefully drains the server: it stops accepting, lets every
// connection finish the requests the server has already read (flushing their
// responses), and waits for all connections to end. If ctx expires first the
// remaining connections are closed forcibly and ctx.Err() is returned.
// Shutdown is idempotent; concurrent calls all wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if first {
		close(s.closed)
	}
	if ln != nil {
		ln.Close()
	}
	// Pull every reader's deadline to now: blocked reads fail immediately,
	// while requests already buffered decode and execute before the reader
	// next touches the socket.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait() //dytis:blocking-ok bounded by the force-close below: ctx expiry closes every socket, which unblocks each conn
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		forced := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			forced = append(forced, c)
		}
		s.mu.Unlock()
		for _, c := range forced {
			s.logf("server: drain timeout: force-closing connection from %s", c.raddr)
			if m := s.cfg.Metrics; m != nil {
				m.forceClosed()
			}
			c.nc.Close()
		}
		if len(forced) > 0 {
			s.logf("server: drain timeout: %d connection(s) force-closed", len(forced))
		}
		<-done //dytis:blocking-ok every socket is now closed, so each conn's serve loop exits promptly
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// connSerial numbers connections for metric sharding.
var connSerial atomic.Uint64

// isTimeout reports whether err is a deadline expiry (drain pull, idle
// reap, or slow-loris reap — the read loop tells them apart by context).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// clientGone matches the errors a closing or resetting peer produces,
// which are normal ends, not log-worthy failures.
func clientGone(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET)
}
