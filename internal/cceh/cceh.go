// Package cceh implements a CCEH-style extendible hash table (Nam et al.,
// FAST 2019), the "CCEH" baseline in Figure 9 of the DyTIS paper.
//
// CCEH interposes fixed-size segments between the directory and the buckets:
// the directory is indexed by the MSBs of the pseudo-key (global depth GD),
// each segment holds 2^SegmentBits cacheline-sized buckets, and the bucket
// within a segment is selected by the LSBs of the pseudo-key. Bounded linear
// probing over adjacent buckets absorbs collisions; when the probe window of
// a bucket is exhausted, the segment splits (and the directory doubles when
// the segment's local depth equals GD). DyTIS adopts this three-level layout
// but replaces the hashed bucket choice with its order-preserving remapping
// function.
package cceh

import "dytis/internal/ehash"

const (
	// SegmentBits selects 2^SegmentBits buckets per segment.
	SegmentBits = 8
	segMask     = 1<<SegmentBits - 1
	// BucketSlots is the number of key/value slots per bucket (a 64-byte
	// cacheline holds 4 16-byte pairs).
	BucketSlots = 4
	// ProbeLen bounds linear probing to this many consecutive buckets.
	ProbeLen = 4
)

// slot holds one pair; occupied slots have pk != 0 is NOT a valid emptiness
// test (pk can legitimately be 0 for the key hashing to 0), so a per-bucket
// occupancy count is kept and slots are packed densely.
type bucketArr struct {
	pks  [BucketSlots]uint64
	keys [BucketSlots]uint64
	vals [BucketSlots]uint64
	n    uint8
}

type segment struct {
	ld      uint8
	buckets [1 << SegmentBits]bucketArr
	n       int
}

// Table is a CCEH hash table. It is not safe for concurrent use.
type Table struct {
	dir []*segment
	gd  uint8
	n   int
}

// New returns an empty CCEH table.
func New() *Table {
	t := &Table{gd: 1}
	t.dir = []*segment{{ld: 1}, {ld: 1}}
	return t
}

func (t *Table) segOf(pk uint64) *segment { return t.dir[pk>>(64-uint(t.gd))] }

// bucketIndex derives the in-segment bucket from the pseudo-key's LSBs.
func bucketIndex(pk uint64) int { return int(pk & segMask) }

// Get returns the value for key.
func (t *Table) Get(key uint64) (uint64, bool) {
	pk := ehash.Mix64(key)
	s := t.segOf(pk)
	bi := bucketIndex(pk)
	for p := 0; p < ProbeLen; p++ {
		b := &s.buckets[(bi+p)&segMask]
		for i := 0; i < int(b.n); i++ {
			if b.pks[i] == pk {
				return b.vals[i], true
			}
		}
	}
	return 0, false
}

// Insert stores or updates key.
func (t *Table) Insert(key, value uint64) {
	pk := ehash.Mix64(key)
	for {
		s := t.segOf(pk)
		bi := bucketIndex(pk)
		// Update in place if present anywhere in the probe window.
		for p := 0; p < ProbeLen; p++ {
			b := &s.buckets[(bi+p)&segMask]
			for i := 0; i < int(b.n); i++ {
				if b.pks[i] == pk {
					b.vals[i] = value
					return
				}
			}
		}
		// Place in the first bucket of the window with a free slot.
		for p := 0; p < ProbeLen; p++ {
			b := &s.buckets[(bi+p)&segMask]
			if int(b.n) < BucketSlots {
				i := b.n
				b.pks[i], b.keys[i], b.vals[i] = pk, key, value
				b.n++
				s.n++
				t.n++
				return
			}
		}
		t.splitSegment(s)
	}
}

// splitSegment divides s into two segments by the (ld+1)-th MSB of the
// pseudo-keys, doubling the directory first if necessary.
func (t *Table) splitSegment(s *segment) {
	if s.ld == t.gd {
		t.doubleDirectory()
	}
	nld := s.ld + 1
	left := &segment{ld: nld}
	right := &segment{ld: nld}
	bit := uint64(1) << (64 - uint(nld))
	// Entries whose probe window is full even in the fresh child are set
	// aside and re-inserted after the directory is updated; insertPK splits
	// the child further if needed, so redistribution always terminates
	// (pseudo-keys are unique).
	var overflow []entry
	for bi := range s.buckets {
		b := &s.buckets[bi]
		for i := 0; i < int(b.n); i++ {
			dst := left
			if b.pks[i]&bit != 0 {
				dst = right
			}
			if !dst.place(b.pks[i], b.keys[i], b.vals[i]) {
				overflow = append(overflow, entry{b.pks[i], b.keys[i], b.vals[i]})
			}
		}
	}
	// Redirect directory entries.
	span := 1 << (t.gd - s.ld)
	first := t.firstDirIndex(s, span)
	half := span / 2
	for i := 0; i < half; i++ {
		t.dir[first+i] = left
	}
	for i := half; i < span; i++ {
		t.dir[first+i] = right
	}
	for _, e := range overflow {
		t.insertPK(e.pk, e.key, e.val)
	}
}

type entry struct{ pk, key, val uint64 }

// place inserts during a split, reporting whether the probe window had room.
func (s *segment) place(pk, key, val uint64) bool {
	bi := bucketIndex(pk)
	for p := 0; p < ProbeLen; p++ {
		b := &s.buckets[(bi+p)&segMask]
		if int(b.n) < BucketSlots {
			i := b.n
			b.pks[i], b.keys[i], b.vals[i] = pk, key, val
			b.n++
			s.n++
			return true
		}
	}
	return false
}

func (t *Table) firstDirIndex(s *segment, span int) int {
	// Locate the first directory entry pointing at s. Entries pointing to
	// the same segment are contiguous.
	for i, d := range t.dir {
		if d == s {
			return i &^ (span - 1)
		}
	}
	panic("cceh: segment not in directory")
}

func (t *Table) doubleDirectory() {
	nd := make([]*segment, len(t.dir)*2)
	for i, s := range t.dir {
		nd[2*i] = s
		nd[2*i+1] = s
	}
	t.dir = nd
	t.gd++
}

// Delete removes key if present.
func (t *Table) Delete(key uint64) bool {
	pk := ehash.Mix64(key)
	s := t.segOf(pk)
	bi := bucketIndex(pk)
	for p := 0; p < ProbeLen; p++ {
		b := &s.buckets[(bi+p)&segMask]
		for i := 0; i < int(b.n); i++ {
			if b.pks[i] == pk {
				last := int(b.n) - 1
				b.pks[i], b.keys[i], b.vals[i] = b.pks[last], b.keys[last], b.vals[last]
				b.n--
				s.n--
				t.n--
				return true
			}
		}
	}
	return false
}

// Len returns the number of live keys.
func (t *Table) Len() int { return t.n }

// GlobalDepth returns the directory depth.
func (t *Table) GlobalDepth() int { return int(t.gd) }

// insertPK is used by the recursive-split recovery path: it re-runs the
// normal insert for a pre-hashed entry.
func (t *Table) insertPK(pk, key, value uint64) {
	for {
		s := t.segOf(pk)
		bi := bucketIndex(pk)
		for p := 0; p < ProbeLen; p++ {
			b := &s.buckets[(bi+p)&segMask]
			if int(b.n) < BucketSlots {
				i := b.n
				b.pks[i], b.keys[i], b.vals[i] = pk, key, value
				b.n++
				s.n++
				return
			}
		}
		t.splitSegment(s)
	}
}
