package workload

import "testing"

func TestStripe(t *testing.T) {
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Key: uint64(i)}
	}
	stripes := Stripe(ops, 3)
	if len(stripes) != 3 {
		t.Fatalf("got %d stripes", len(stripes))
	}
	// Every op appears exactly once, on stripe i%n, in order.
	total := 0
	for s, stripe := range stripes {
		prev := -1
		for _, op := range stripe {
			k := int(op.Key)
			if k%3 != s {
				t.Fatalf("key %d landed on stripe %d", k, s)
			}
			if k <= prev {
				t.Fatalf("stripe %d out of order: %d after %d", s, k, prev)
			}
			prev = k
			total++
		}
	}
	if total != len(ops) {
		t.Fatalf("stripes hold %d ops, want %d", total, len(ops))
	}
}

func TestStripeDegenerate(t *testing.T) {
	if got := Stripe(nil, 4); len(got) != 4 {
		t.Fatalf("nil ops: %d stripes", len(got))
	}
	one := Stripe(make([]Op, 5), 0) // n < 1 clamps to 1
	if len(one) != 1 || len(one[0]) != 5 {
		t.Fatalf("clamped stripe: %d stripes, %d ops", len(one), len(one[0]))
	}
}
