package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// TestDeadlineFlagRoundTrip: TimeoutMS survives encode/decode for every
// opcode, and the flag costs exactly 4 bytes only when a budget is set.
func TestDeadlineFlagRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Op: OpPing, TimeoutMS: 250},
		{ID: 2, Op: OpGet, Key: 42, TimeoutMS: 1},
		{ID: 3, Op: OpInsert, Key: 1, Val: 2, TimeoutMS: ^uint32(0)},
		{ID: 4, Op: OpScan, Key: 9, Max: 100, TimeoutMS: 5000},
		{ID: 5, Op: OpGetBatch, Keys: []uint64{1, 2, 3}, TimeoutMS: 77},
		{ID: 6, Op: OpInsertBatch, Keys: []uint64{7}, Vals: []uint64{8}, TimeoutMS: 9},
		{ID: 7, Op: OpDeleteBatch, Keys: []uint64{0}, TimeoutMS: 10},
		{ID: 8, Op: OpLen, TimeoutMS: 11},
	}
	for _, r := range reqs {
		got := roundTripReq(t, r)
		if got.TimeoutMS != r.TimeoutMS {
			t.Errorf("%s: TimeoutMS = %d want %d", r.Op, got.TimeoutMS, r.TimeoutMS)
		}
		with, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		bare := *r
		bare.TimeoutMS = 0
		without, err := AppendRequest(nil, &bare)
		if err != nil {
			t.Fatal(err)
		}
		if len(with) != len(without)+4 {
			t.Errorf("%s: deadline flag costs %d bytes, want 4", r.Op, len(with)-len(without))
		}
	}
}

// TestDeadlineFlagZeroBudgetRejected: a flagged opcode with budget 0 is
// non-canonical (the encoder omits the flag) and must not decode.
func TestDeadlineFlagZeroBudgetRejected(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 9, Op: OpGet, Key: 3, TimeoutMS: 500})
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:]
	// Zero the 4 budget bytes that follow the flagged opcode byte.
	copy(body[9:13], []byte{0, 0, 0, 0})
	var req Request
	if err := DecodeRequest(body, &req); err == nil {
		t.Fatal("zero-budget deadline flag decoded")
	}
}

// TestDeadlineFlagTruncatedBudget: the flag promising 4 bytes that are not
// there is a truncation, not a panic.
func TestDeadlineFlagTruncatedBudget(t *testing.T) {
	body := make([]byte, 9)
	body[8] = byte(OpPing) | FlagDeadline
	var req Request
	if err := DecodeRequest(body, &req); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestResponseRejectsDeadlineFlag: responses never carry the flag; a
// flagged response opcode byte must fail as an unknown opcode.
func TestResponseRejectsDeadlineFlag(t *testing.T) {
	frame, err := AppendResponse(nil, &Response{ID: 1, Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:]
	body[8] |= FlagDeadline
	var resp Response
	if err := DecodeResponse(body, &resp); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("err = %v, want ErrBadOpcode", err)
	}
}

// TestStatusOverloadRetryAfter: the retry-after hint rides the message
// field and parses back on the client side.
func TestStatusOverloadRetryAfter(t *testing.T) {
	r := roundTripResp(t, &Response{
		ID: 3, Op: OpGet, Status: StatusOverload, Msg: (150 * time.Millisecond).String(),
	})
	d, ok := r.RetryAfter()
	if !ok || d != 150*time.Millisecond {
		t.Fatalf("RetryAfter = %v,%v want 150ms,true", d, ok)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "150ms") {
		t.Fatalf("Err = %v, want overload with hint", err)
	}
	if _, ok := (&Response{Status: StatusOK}).RetryAfter(); ok {
		t.Fatal("RetryAfter parsed on StatusOK")
	}
	if _, ok := (&Response{Status: StatusOverload, Msg: "garbage"}).RetryAfter(); ok {
		t.Fatal("RetryAfter parsed garbage")
	}
}

// TestReadHeaderBodySplit: the two-phase frame read equals ReadFrame and
// enforces the same limits at the header stage.
func TestReadHeaderBodySplit(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 12, Op: OpInsert, Key: 5, Val: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	n, err := ReadHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame)-4 {
		t.Fatalf("ReadHeader = %d want %d", n, len(frame)-4)
	}
	body, _, err := ReadBody(r, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, frame[4:]) {
		t.Fatal("ReadHeader+ReadBody != frame body")
	}

	// Oversized length dies at the header, before any body allocation.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadHeader(bytes.NewReader(big)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize header err = %v", err)
	}
	// A body cut short is an unexpected EOF, never a short read.
	r2 := bytes.NewReader(frame[:len(frame)-3])
	n2, err := ReadHeader(r2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadBody(r2, n2, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body err = %v", err)
	}
}
