package server_test

// End-to-end tests for the v2 streaming scan: a large scan must arrive
// complete and ordered while the server's per-connection outbound queue stays
// bounded by the credit window (the whole point of streaming — the old OpScan
// marshalled the full result before the first byte moved), streams must
// interleave with point ops on the same connection, and cancellation must
// release the stream without hurting the connection.

import (
	"context"
	"net"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/core"
	"dytis/internal/proto"
	"dytis/internal/server"
)

// bigOpts sizes the index for bulk key counts (smallOpts' tiny segments make
// million-key loads needlessly slow).
func bigOpts() core.Options {
	return core.Options{FirstLevelBits: 6, BucketEntries: 128, StartDepth: 2, Concurrent: true}
}

// TestScanStreamLargeBounded is the streaming acceptance test: a scan of the
// whole keyspace (1M keys, 64K under -short) completes correctly while the
// server buffers no more than the credit window's worth of chunk frames.
func TestScanStreamLargeBounded(t *testing.T) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 16
	}
	idx := core.New(bigOpts())
	for k := 0; k < n; k++ {
		idx.Insert(uint64(k), uint64(k)+1)
	}
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{Metrics: m})

	const chunk, window = 1024, 8
	c, err := client.Dial(addr, client.WithPoolSize(1), client.WithScanStream(chunk, window))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	s := c.ScanStream(ctx, 0, 0)
	defer s.Close()
	var count uint64
	for s.Next() {
		if s.Key() != count || s.Value() != count+1 {
			t.Fatalf("pair %d: got %d/%d", count, s.Key(), s.Value())
		}
		count++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if count != uint64(n) {
		t.Fatalf("stream delivered %d pairs, want %d", count, n)
	}
	if got := s.Total(); got != uint64(n) {
		t.Fatalf("Total = %d, want the server's end-of-stream count %d", got, n)
	}
	if m.ScanStreams() != 1 || m.ScanChunks() == 0 {
		t.Fatalf("stream metrics = %d streams / %d chunks", m.ScanStreams(), m.ScanChunks())
	}

	// Bounded buffering: the peak of the connection's outbound queue must
	// stay within the credit window — `window` full chunk frames plus one
	// frame of slack for the end-of-stream and handshake traffic — which is
	// a small fraction of the ~16 MiB a slurped scan of n pairs marshals.
	full := make([]uint64, chunk)
	frame, err := proto.AppendResponseV(nil, &proto.Response{
		Op: proto.OpScanChunk, Keys: full, Vals: full,
	}, proto.Version2)
	if err != nil {
		t.Fatal(err)
	}
	chunkFrame := int64(len(frame) + proto.TrailerLen)
	budget := (window + 1) * chunkFrame
	peak := m.OutQueuePeakBytes()
	if peak == 0 || peak > budget {
		t.Fatalf("out-queue peak = %d bytes, want (0, %d] (window of %d chunk frames)", peak, budget, window)
	}
	t.Logf("scanned %d pairs in %d-pair chunks; out-queue peak %d bytes (budget %d)", n, chunk, peak, budget)
}

// TestScanStreamBudget: ScanMax caps the stream server-side, mid-chunk when
// it has to.
func TestScanStreamBudget(t *testing.T) {
	idx := core.New(smallOpts())
	for k := 0; k < 5000; k++ {
		idx.Insert(uint64(k), uint64(k))
	}
	addr, _ := start(t, idx, server.Config{})
	c, err := client.Dial(addr, client.WithScanStream(1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := c.ScanStream(context.Background(), 0, 2500)
	defer s.Close()
	var count uint64
	for s.Next() {
		if s.Key() != count {
			t.Fatalf("pair %d: key %d", count, s.Key())
		}
		count++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 2500 || s.Total() != 2500 {
		t.Fatalf("delivered %d (total %d), want 2500", count, s.Total())
	}
}

// TestScanStreamInterleavesPointOps: with one pooled connection, point ops
// issued while a stream is mid-flight share the pipeline and both finish
// correctly — a streamed scan must not monopolize the connection.
func TestScanStreamInterleavesPointOps(t *testing.T) {
	idx := core.New(smallOpts())
	const n = 20000
	for k := 0; k < n; k++ {
		idx.Insert(uint64(k), uint64(k)*2)
	}
	addr, _ := start(t, idx, server.Config{})
	c, err := client.Dial(addr, client.WithPoolSize(1), client.WithScanStream(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// The stream is capped at the n preloaded keys; the interleaved inserts
	// land above them and stay out of its result.
	s := c.ScanStream(ctx, 0, n)
	defer s.Close()
	var count uint64
	for s.Next() {
		if s.Key() != count || s.Value() != count*2 {
			t.Fatalf("pair %d: %d/%d", count, s.Key(), s.Value())
		}
		// Every few chunks, a point read and a write cut into the stream.
		if count%1000 == 0 {
			k := count % n
			if v, ok, err := c.Get(ctx, k); err != nil || !ok || v != k*2 {
				t.Fatalf("interleaved Get(%d) = %d,%v,%v", k, v, ok, err)
			}
			if err := c.Insert(ctx, uint64(n)+count, 1); err != nil {
				t.Fatalf("interleaved Insert: %v", err)
			}
		}
		count++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("stream delivered %d pairs, want the %d preloaded", count, n)
	}
}

// TestScanStreamCancel: closing a Scanner mid-stream cancels it server-side
// and the connection remains fully usable, including for another stream.
func TestScanStreamCancel(t *testing.T) {
	idx := core.New(smallOpts())
	const n = 50000
	for k := 0; k < n; k++ {
		idx.Insert(uint64(k), uint64(k))
	}
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{Metrics: m})
	c, err := client.Dial(addr, client.WithPoolSize(1), client.WithScanStream(128, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	s := c.ScanStream(ctx, 0, 0)
	for i := 0; i < 100; i++ {
		if !s.Next() {
			t.Fatalf("Next = false at pair %d: %v", i, s.Err())
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The connection took the cancel in stride: point ops and a fresh,
	// complete stream still work on it.
	if v, ok, err := c.Get(ctx, 7); err != nil || !ok || v != 7 {
		t.Fatalf("Get after cancel = %d,%v,%v", v, ok, err)
	}
	s2 := c.ScanStream(ctx, 0, 0)
	defer s2.Close()
	var count uint64
	for s2.Next() {
		count++
	}
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("post-cancel stream delivered %d pairs, want %d", count, n)
	}
	if m.ScanStreams() != 2 {
		t.Fatalf("ScanStreams = %d, want 2", m.ScanStreams())
	}
}

// TestScanStreamContextCancel: a context cancelled mid-stream ends the
// iterator with ctx.Err() while the connection survives for later calls.
func TestScanStreamContextCancel(t *testing.T) {
	idx := core.New(smallOpts())
	for k := 0; k < 50000; k++ {
		idx.Insert(uint64(k), uint64(k))
	}
	addr, _ := start(t, idx, server.Config{})
	c, err := client.Dial(addr, client.WithPoolSize(1), client.WithScanStream(128, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	s := c.ScanStream(ctx, 0, 0)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if !s.Next() {
			t.Fatalf("Next = false at pair %d: %v", i, s.Err())
		}
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for s.Next() {
		if time.Now().After(deadline) {
			t.Fatal("stream still yielding long after context cancel")
		}
	}
	if err := s.Err(); err == nil {
		t.Fatal("cancelled stream ended with nil Err")
	}
	if v, ok, err := c.Get(context.Background(), 9); err != nil || !ok || v != 9 {
		t.Fatalf("Get after context cancel = %d,%v,%v", v, ok, err)
	}
}

// TestScanStreamRequiresNegotiation: OpScanStart without FeatScanStream (a
// raw v1 socket forging the opcode) is a protocol violation that drops the
// connection.
func TestScanStreamRequiresNegotiation(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	out, err := proto.AppendRequest(nil, &proto.Request{
		ID: 1, Op: proto.OpScanStart, Max: 10, Credits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, _, err := proto.ReadFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp proto.Response
	if err := proto.DecodeResponse(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusBadRequest {
		t.Fatalf("unnegotiated OpScanStart answered %+v, want bad-request", resp)
	}
	if _, _, err := proto.ReadFrame(nc, nil); err == nil {
		t.Fatal("connection stayed open after unnegotiated OpScanStart")
	}
}
