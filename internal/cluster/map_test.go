package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dytis/internal/proto"
)

func TestUniformCoversKeySpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 16} {
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = strings.Repeat("a", i+1)
		}
		m, err := Uniform(1, addrs)
		if err != nil {
			t.Fatalf("Uniform(%d): %v", n, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Uniform(%d) invalid: %v", n, err)
		}
		// Probe boundaries: every key has exactly one owner and adjacent
		// shards meet with no gap.
		for i, s := range m.Shards {
			if got := m.Owner(s.Lo); got != s {
				t.Errorf("n=%d: Owner(%#x) = %+v, want shard %d", n, s.Lo, got, i)
			}
			if got := m.Owner(s.Hi); got != s {
				t.Errorf("n=%d: Owner(%#x) = %+v, want shard %d", n, s.Hi, got, i)
			}
		}
		if m.Owner(0) != m.Shards[0] || m.Owner(math.MaxUint64) != m.Shards[n-1] {
			t.Errorf("n=%d: extremes misrouted", n)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	if _, err := Uniform(1, nil); err == nil {
		t.Error("Uniform with no addrs accepted")
	}
	if _, err := Uniform(0, []string{"a"}); err == nil {
		t.Error("Uniform with epoch 0 accepted")
	}
	// One shard owns everything.
	m, err := Uniform(1, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].Lo != 0 || m.Shards[0].Hi != math.MaxUint64 {
		t.Errorf("single shard range [%#x, %#x]", m.Shards[0].Lo, m.Shards[0].Hi)
	}
}

func TestValidateRejects(t *testing.T) {
	full := func() *Map {
		m, _ := Uniform(1, []string{"a", "b"})
		return m
	}
	cases := []struct {
		name string
		mut  func(*Map)
	}{
		{"zero epoch", func(m *Map) { m.Epoch = 0 }},
		{"no shards", func(m *Map) { m.Shards = nil }},
		{"gap", func(m *Map) { m.Shards[1].Lo++ }},
		{"overlap", func(m *Map) { m.Shards[1].Lo-- }},
		{"uncovered tail", func(m *Map) { m.Shards[1].Hi-- }},
		{"nonzero start", func(m *Map) { m.Shards[0].Lo = 1 }},
		{"inverted", func(m *Map) { m.Shards[0].Lo, m.Shards[0].Hi = m.Shards[0].Hi, m.Shards[0].Lo }},
		{"empty addr", func(m *Map) { m.Shards[0].Addr = "" }},
		{"oversized addr", func(m *Map) { m.Shards[0].Addr = strings.Repeat("x", proto.MaxAddr+1) }},
	}
	for _, tc := range cases {
		m := full()
		tc.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := full().Validate(); err != nil {
		t.Fatalf("control map invalid: %v", err)
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m, err := Uniform(7, []string{"127.0.0.1:7070", "127.0.0.1:7071", "127.0.0.1:7072"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatalf("DecodeMap: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}
	if len(m.Encode()) > proto.MaxMapBlob {
		t.Fatalf("encoded map exceeds MaxMapBlob")
	}
}

func TestDecodeMapHostileInput(t *testing.T) {
	m, _ := Uniform(1, []string{"a", "b"})
	blob := m.Encode()
	cases := [][]byte{
		nil,
		blob[:4],
		blob[:len(blob)-1],                    // truncated address
		append(blob[:len(blob):len(blob)], 0), // trailing byte
	}
	for i, b := range cases {
		if _, err := DecodeMap(b); err == nil {
			t.Errorf("case %d: hostile blob accepted", i)
		}
	}
	// A blob claiming absurd shard counts must not allocate.
	huge := append([]byte(nil), blob[:12]...)
	huge[8], huge[9], huge[10], huge[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeMap(huge); err == nil {
		t.Error("absurd shard count accepted")
	}
	// Decoded maps are re-validated: a well-formed encoding of a bad map
	// (gap) is rejected too.
	bad, _ := Uniform(1, []string{"a", "b"})
	bad.Shards[1].Lo++
	if _, err := DecodeMap(bad.Encode()); err == nil {
		t.Error("encoded gap map accepted")
	}
}

func TestSubtractRange(t *testing.T) {
	cases := []struct {
		oldLo, oldHi, newLo, newHi uint64
		want                       []keyRange
	}{
		{0, 99, 0, 99, nil},                            // unchanged
		{0, 99, 0, 49, []keyRange{{50, 99}}},           // tail de-owned
		{0, 99, 50, 99, []keyRange{{0, 49}}},           // head de-owned
		{0, 99, 25, 74, []keyRange{{0, 24}, {75, 99}}}, // both ends
		{0, 99, 1, 0, []keyRange{{0, 99}}},             // all de-owned (empty new)
		{1, 0, 0, 99, nil},                             // empty old
		{0, math.MaxUint64, 0, math.MaxUint64, nil},
		{0, math.MaxUint64, 1, math.MaxUint64, []keyRange{{0, 0}}},
		{0, math.MaxUint64, 0, math.MaxUint64 - 1, []keyRange{{math.MaxUint64, math.MaxUint64}}},
	}
	for _, tc := range cases {
		got := subtractRange(tc.oldLo, tc.oldHi, tc.newLo, tc.newHi)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("subtract([%d,%d] - [%d,%d]) = %v, want %v", tc.oldLo, tc.oldHi, tc.newLo, tc.newHi, got, tc.want)
		}
	}
}

func TestOwnerMatchesLinearScan(t *testing.T) {
	m, _ := Uniform(1, []string{"a", "b", "c", "d", "e"})
	probe := []uint64{0, 1, 1 << 20, 1 << 62, 1<<63 - 1, 1 << 63, math.MaxUint64 - 1, math.MaxUint64}
	for _, k := range probe {
		want := Shard{}
		for _, s := range m.Shards {
			if s.Contains(k) {
				want = s
				break
			}
		}
		if got := m.Owner(k); got != want {
			t.Errorf("Owner(%#x) = %+v, want %+v", k, got, want)
		}
	}
}

func TestValidateEncodedSizeBound(t *testing.T) {
	// MaxShards entries with long addresses overflow proto.MaxMapBlob and
	// must be rejected by Validate, since proto cannot transport them.
	addrs := make([]string, MaxShards)
	for i := range addrs {
		addrs[i] = strings.Repeat("x", 100)
	}
	m, err := Uniform(1, addrs)
	if err == nil {
		err = m.Validate()
	}
	if err == nil {
		t.Fatal("oversized encoded map accepted")
	}
	if !strings.Contains(err.Error(), "MaxMapBlob") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReassign(t *testing.T) {
	base, err := Uniform(3, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	bLo, bHi := base.Shards[1].Lo, base.Shards[1].Hi

	t.Run("whole shard to fresh addr", func(t *testing.T) {
		next, err := base.Reassign(bLo, bHi, "d")
		if err != nil {
			t.Fatal(err)
		}
		if next.Epoch != base.Epoch+1 {
			t.Fatalf("epoch = %d, want %d", next.Epoch, base.Epoch+1)
		}
		if len(next.Shards) != 3 {
			t.Fatalf("got %d shards, want 3: %+v", len(next.Shards), next.Shards)
		}
		if got := next.Owner(bLo).Addr; got != "d" {
			t.Fatalf("owner of %#x = %s, want d", bLo, got)
		}
		for _, s := range next.Shards {
			if s.Addr == "b" {
				t.Fatalf("b still owns %+v after giving up its whole shard", s)
			}
		}
	})

	t.Run("prefix grows left neighbor", func(t *testing.T) {
		mid := bLo + (bHi-bLo)/2
		next, err := base.Reassign(bLo, mid, "a")
		if err != nil {
			t.Fatal(err)
		}
		if len(next.Shards) != 3 {
			t.Fatalf("got %d shards, want 3 (a's range and the prefix must merge): %+v", len(next.Shards), next.Shards)
		}
		if a := next.Shards[0]; a.Addr != "a" || a.Lo != 0 || a.Hi != mid {
			t.Fatalf("shard 0 = %+v, want a owning [0, %#x]", a, mid)
		}
		if b := next.Shards[1]; b.Addr != "b" || b.Lo != mid+1 || b.Hi != bHi {
			t.Fatalf("shard 1 = %+v, want b owning [%#x, %#x]", b, mid+1, bHi)
		}
	})

	t.Run("suffix grows right neighbor", func(t *testing.T) {
		mid := bLo + (bHi-bLo)/2
		next, err := base.Reassign(mid, bHi, "c")
		if err != nil {
			t.Fatal(err)
		}
		if len(next.Shards) != 3 {
			t.Fatalf("got %d shards, want 3: %+v", len(next.Shards), next.Shards)
		}
		if c := next.Shards[2]; c.Addr != "c" || c.Lo != mid || c.Hi != ^uint64(0) {
			t.Fatalf("shard 2 = %+v, want c owning [%#x, %#x]", c, mid, ^uint64(0))
		}
	})

	t.Run("middle cut rejected when donor keeps both sides", func(t *testing.T) {
		if _, err := base.Reassign(bLo+10, bHi-10, "d"); err == nil {
			t.Fatal("Reassign accepted a cut leaving b two disjoint ranges")
		}
	})

	t.Run("full key space to one addr", func(t *testing.T) {
		next, err := base.Reassign(0, ^uint64(0), "d")
		if err != nil {
			t.Fatal(err)
		}
		if len(next.Shards) != 1 || next.Shards[0].Addr != "d" {
			t.Fatalf("got %+v, want single shard owned by d", next.Shards)
		}
	})

	t.Run("inverted range rejected", func(t *testing.T) {
		if _, err := base.Reassign(5, 4, "d"); err == nil {
			t.Fatal("inverted range accepted")
		}
	})

	t.Run("self reassign is identity layout", func(t *testing.T) {
		next, err := base.Reassign(bLo, bHi, "b")
		if err != nil {
			t.Fatal(err)
		}
		if len(next.Shards) != len(base.Shards) {
			t.Fatalf("got %d shards, want %d", len(next.Shards), len(base.Shards))
		}
		for i, s := range next.Shards {
			if s != base.Shards[i] {
				t.Fatalf("shard %d = %+v, want %+v", i, s, base.Shards[i])
			}
		}
	})

	t.Run("max key edge", func(t *testing.T) {
		cLo := base.Shards[2].Lo
		next, err := base.Reassign(cLo, ^uint64(0), "d")
		if err != nil {
			t.Fatal(err)
		}
		if last := next.Shards[len(next.Shards)-1]; last.Addr != "d" || last.Hi != ^uint64(0) {
			t.Fatalf("last shard = %+v, want d ending at max", last)
		}
	})
}
