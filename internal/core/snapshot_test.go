package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := New(smallOpts())
	rng := rand.New(rand.NewSource(2))
	ref := map[uint64]uint64{}
	for i := 0; i < 30000; i++ {
		k := rng.Uint64()
		v := rng.Uint64()
		d.Insert(k, v)
		ref[k] = v
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16+16*len(ref) {
		t.Fatalf("snapshot size %d want %d", buf.Len(), 16+16*len(ref))
	}
	d2 := New(smallOpts())
	if err := d2.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", d2.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := d2.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%#x) = %d,%v want %d", k, got, ok, v)
		}
	}
	if err := d2.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restored index remains writable.
	d2.Insert(12345, 1)
	if _, ok := d2.Get(12345); !ok {
		t.Fatal("restored index not writable")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	d := New(smallOpts())
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := New(smallOpts())
	d2.Insert(1, 1) // will be replaced
	if err := d2.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 0 {
		t.Fatalf("Len=%d want 0", d2.Len())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	d := New(smallOpts())
	cases := map[string]string{
		"empty":     "",
		"bad magic": strings.Repeat("x", 64),
	}
	for name, in := range cases {
		if err := d.ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: ReadSnapshot accepted garbage", name)
		}
	}
}

func TestSnapshotRejectsTruncated(t *testing.T) {
	d := New(smallOpts())
	for i := uint64(0); i < 100; i++ {
		d.Insert(i, i)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	d2 := New(smallOpts())
	if err := d2.ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
}
