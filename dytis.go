// Package dytis is the public API of this repository's reproduction of
// "DyTIS: A Dynamic Dataset Targeted Index Structure Simultaneously
// Efficient for Search, Insert, and Scan" (Yang et al., EuroSys '23).
//
// DyTIS is an in-memory ordered index over uint64 keys that supports point
// search, insert (upsert), delete, and range scans, and — unlike learned
// indexes — needs no bulk-load training phase: it learns and adjusts a
// piecewise-linear approximation of the key distribution's CDF incrementally
// as keys arrive, which makes it effective for dynamic datasets whose key
// densities vary across the key space and drift over time.
//
// Quick start:
//
//	idx := dytis.NewDefault()
//	idx.Insert(42, 1)
//	v, ok := idx.Get(42)
//	pairs := idx.Scan(0, 100, nil) // first 100 pairs in key order
//
// For multi-goroutine use, enable the two-level locking scheme of the
// paper's §3.4:
//
//	idx := dytis.New(dytis.Options{Concurrent: true})
//
// Beyond the core operations the index offers ordered iteration (NewCursor,
// Range), Min/Max/Successor, a LoadSorted bulk fast path, binary snapshots
// (WriteSnapshot/ReadSnapshot), and structure statistics (Stats,
// MemoryFootprint). String keys are supported via the dytis/strkey
// subpackage.
//
// The internal packages also contain the paper's baselines (an ALEX-like
// adaptive learned index, an XIndex-like concurrent learned index, an STX
// style B+-tree, classic Extendible Hashing, and CCEH), the synthetic
// dynamic datasets, the YCSB-style workload generator, and the benchmark
// harness that regenerates every table and figure of the paper's evaluation;
// see DESIGN.md and EXPERIMENTS.md.
package dytis

import (
	"dytis/internal/core"
	"dytis/internal/kv"
)

// Key is an 8-byte integer key, ordered by unsigned value.
type Key = kv.Key

// Value is an 8-byte value payload (a pointer/handle in a real system).
type Value = kv.Value

// KV is a key/value pair, the unit returned by scans.
type KV = kv.KV

// Options configure an Index; the zero value selects the paper's §4.1
// defaults (R=9, 2 KB buckets, U_t=0.6, L_start=6, adaptive Limit_seg).
type Options = core.Options

// Stats reports the index's structure-maintenance counters (splits,
// remappings, expansions, directory doublings) and shape.
type Stats = core.Stats

// Index is a DyTIS index. See the package documentation for usage; all
// methods are safe for concurrent use iff Options.Concurrent was set.
// Beyond the point operations, Index offers Scan/Range, Min/Max/Successor,
// NewCursor for ordered iteration, and LoadSorted as a bulk fast path.
type Index = core.DyTIS

// Cursor iterates an Index in ascending key order; see Index.NewCursor.
type Cursor = core.Cursor

// New creates an empty index with the given options.
func New(opts Options) *Index { return core.New(opts) }

// NewDefault creates an empty single-threaded index with the paper's
// default parameters.
func NewDefault() *Index { return core.NewDefault() }
