package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"time"

	"dytis/internal/kv"
	"dytis/internal/proto"
)

// conn is one client connection: a read loop (the serve goroutine itself,
// which also executes the index operations) feeding encoded responses to a
// write loop over the bounded out channel. See the package comment for the
// backpressure chain.
type conn struct {
	srv *Server
	nc  netConn
	out chan []byte

	// Read-loop scratch, reused across requests so the steady state of a
	// connection allocates only the response frames it sends.
	readBuf []byte
	req     proto.Request
	resp    proto.Response
	kvBuf   []kv.KV
	shard   int
}

// netConn is the subset of net.Conn the conn uses (test seam).
type netConn interface {
	io.ReadWriteCloser
	SetReadDeadline(t time.Time) error
}

func (c *conn) serve() {
	c.shard = int(connSerial.Add(1))
	c.out = make(chan []byte, c.srv.cfg.Pipeline)
	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)

	br := bufio.NewReaderSize(c.nc, 32<<10)
	for {
		body, buf, err := proto.ReadFrame(br, c.readBuf)
		c.readBuf = buf
		if err != nil {
			if err != io.EOF && !clientGone(err) {
				c.srv.logf("server: conn read: %v", err)
			}
			break
		}
		if err := proto.DecodeRequest(body, &c.req); err != nil {
			// The frame was well-delimited but its body is malformed. Answer
			// with the request id if one was present, then drop the
			// connection: a peer that emits garbage cannot be assumed to
			// agree on stream alignment from here on.
			if m := c.srv.cfg.Metrics; m != nil {
				m.protoError()
			}
			var id uint64
			if len(body) >= 8 {
				id = binary.BigEndian.Uint64(body)
			}
			c.send(&proto.Response{
				ID: id, Op: proto.OpPing, Status: proto.StatusBadRequest, Msg: err.Error(),
			})
			break
		}
		if !c.handle() {
			break
		}
	}
	close(c.out)
	<-writerDone
	c.nc.Close()
}

// handle executes c.req against the index, books the server-side latency,
// and queues the response; it reports whether the connection should go on.
func (c *conn) handle() bool {
	idx := c.srv.cfg.Index
	req, resp := &c.req, &c.resp
	*resp = proto.Response{
		ID: req.ID, Op: req.Op,
		Keys: resp.Keys[:0], Vals: resp.Vals[:0], Founds: resp.Founds[:0],
	}
	t0 := time.Now()
	switch req.Op {
	case proto.OpPing:
	case proto.OpGet:
		resp.Val, resp.Found = idx.Get(req.Key)
	case proto.OpInsert:
		idx.Insert(req.Key, req.Val)
	case proto.OpDelete:
		resp.Found = idx.Delete(req.Key)
	case proto.OpScan:
		c.kvBuf = idx.Scan(req.Key, int(req.Max), c.kvBuf[:0])
		for _, p := range c.kvBuf {
			resp.Keys = append(resp.Keys, p.Key)
			resp.Vals = append(resp.Vals, p.Value)
		}
	case proto.OpGetBatch:
		resp.Vals, resp.Founds = idx.GetBatch(req.Keys, resp.Vals, resp.Founds)
	case proto.OpInsertBatch:
		idx.InsertBatch(req.Keys, req.Vals)
	case proto.OpDeleteBatch:
		resp.Founds = idx.DeleteBatch(req.Keys, resp.Founds)
	case proto.OpLen:
		resp.Val = uint64(idx.Len())
	}
	if m := c.srv.cfg.Metrics; m != nil {
		m.recordOp(req.Op, c.shard, batchSize(req), time.Since(t0))
	}
	return c.send(resp)
}

// batchSize is the operation count a request represents, for metrics.
func batchSize(req *proto.Request) int {
	switch req.Op {
	case proto.OpGetBatch, proto.OpInsertBatch, proto.OpDeleteBatch:
		return len(req.Keys)
	}
	return 1
}

// send encodes resp and queues it on the out channel, blocking when the
// write loop is backed up (the read side of the backpressure chain).
func (c *conn) send(resp *proto.Response) bool {
	frame, err := proto.AppendResponse(nil, resp)
	if err != nil {
		// Only reachable if the index returned an over-limit result, which
		// the request validation rules out; treat as a connection-fatal bug.
		c.srv.logf("server: encode response: %v", err)
		return false
	}
	c.out <- frame
	return true
}

// writeLoop drains the out channel into the socket through one buffered
// writer, flushing whenever the queue momentarily empties, so pipelined
// responses coalesce into large writes but the last response of a burst is
// never withheld.
func (c *conn) writeLoop(done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(c.nc, 32<<10)
	for frame := range c.out {
		if _, err := bw.Write(frame); err != nil {
			c.nc.Close() // unwedge the read loop too
			drainOut(c.out)
			return
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				c.nc.Close()
				drainOut(c.out)
				return
			}
		}
	}
	bw.Flush()
}

// drainOut keeps a failed writer from wedging the read loop on a full
// channel: consume until the read loop closes it.
func drainOut(out <-chan []byte) {
	for range out {
	}
}
