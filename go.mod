module dytis

go 1.22
