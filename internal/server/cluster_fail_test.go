package server_test

// Failure-path cluster tests that need no fault injector: a shard dying
// mid-scatter-gather scan, and a tripped per-endpoint circuit breaker
// staying isolated from routing to healthy shards.

import (
	"context"
	"errors"
	"testing"
	"time"

	"dytis/client"
)

// TestClusterScanShardDeath kills one shard while a scatter-gather
// ScanStream is mid-merge: the merge must stop promptly with a typed
// ErrScanInterrupted, never run to completion as a silently truncated
// "success".
func TestClusterScanShardDeath(t *testing.T) {
	procs := startCluster(t, 3)
	// A small chunk and credit window keep most of each shard's data
	// server-side, so the kill lands while the stream genuinely depends on
	// the shard being alive (DialCluster plumbs the option to every
	// per-endpoint client).
	cl, err := client.DialCluster([]string{procs[0].addr}, client.WithScanStream(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const total = 6000
	keys := make([]uint64, total)
	vals := make([]uint64, total)
	for i := range keys {
		keys[i] = spread(uint64(i)) // bijective spread: every shard holds a slice
		vals[i] = uint64(i)
	}
	if err := cl.InsertBatch(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}

	s := cl.ScanStream(ctx, 0, 0)
	defer s.Close()
	// Pull a few pairs so every per-shard stream is live, then kill the
	// middle shard under the merge.
	for i := 0; i < 10; i++ {
		if !s.Next() {
			t.Fatalf("merge died after %d pairs before the kill: %v", i, s.Err())
		}
	}
	procs[1].stop()

	start := time.Now()
	n := uint64(10)
	for s.Next() {
		n++
	}
	elapsed := time.Since(start)
	err = s.Err()
	if err == nil {
		t.Fatalf("merge completed with %d/%d pairs and nil Err after shard death", n, total)
	}
	if !errors.Is(err, client.ErrScanInterrupted) {
		t.Fatalf("merge Err = %v, want ErrScanInterrupted in the chain", err)
	}
	var se *client.ScanInterruptedError
	if !errors.As(err, &se) {
		t.Fatalf("merge Err %v is not a *ScanInterruptedError", err)
	}
	if n >= total {
		t.Fatalf("merge delivered all %d pairs despite a dead shard", n)
	}
	// "Promptly": a dead connection errors on the next pull, it does not
	// sit out a long timeout.
	if elapsed > 10*time.Second {
		t.Fatalf("merge took %v to surface the dead shard", elapsed)
	}
}

// TestClusterBreakerIsolation trips the circuit breaker of one endpoint's
// pooled client (by killing that shard) and requires routing to the
// surviving shard to keep working — DialCluster's options reach each
// per-endpoint Client, and a breaker is per-endpoint state, never
// cluster-wide.
func TestClusterBreakerIsolation(t *testing.T) {
	procs := startCluster(t, 2)
	cl, err := client.DialCluster([]string{procs[0].addr},
		client.WithCircuitBreaker(1, time.Hour)) // one failure opens it, and it stays open
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	half := ^uint64(0)/2 + 1
	lowKey, highKey := uint64(100), half+100
	if err := cl.Insert(ctx, lowKey, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(ctx, highKey, 2); err != nil {
		t.Fatal(err)
	}

	procs[0].stop()

	// First op on the dead endpoint fails on the wire and trips its
	// breaker; the next proves the breaker is open (fail-fast, typed).
	if err := cl.Insert(ctx, lowKey, 3); err == nil {
		t.Fatal("Insert on killed shard succeeded")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := cl.Insert(ctx, lowKey, 3)
		if errors.Is(err, client.ErrCircuitOpen) {
			break
		}
		if err == nil {
			t.Fatal("Insert on killed shard succeeded")
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; last err: %v", err)
		}
	}

	// The healthy shard's endpoint must be untouched by the tripped one.
	for i := uint64(0); i < 20; i++ {
		if err := cl.Insert(ctx, highKey+i, i); err != nil {
			t.Fatalf("Insert on healthy shard with a tripped sibling breaker: %v", err)
		}
		v, found, err := cl.Get(ctx, highKey+i)
		if err != nil || !found || v != i {
			t.Fatalf("Get on healthy shard = (%d, %v, %v), want (%d, true, nil)", v, found, err, i)
		}
	}

	// The router's health view reflects the split.
	var deadFails, liveFails = -1, -1
	for _, h := range cl.Health() {
		switch h.Addr {
		case procs[0].addr:
			deadFails = h.Fails
		case procs[1].addr:
			liveFails = h.Fails
		}
	}
	if deadFails <= 0 {
		t.Fatalf("dead endpoint health Fails = %d, want > 0", deadFails)
	}
	if liveFails > 0 {
		t.Fatalf("healthy endpoint health Fails = %d, want 0", liveFails)
	}
}
