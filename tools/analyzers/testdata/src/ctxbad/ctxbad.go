// Package ctxbad holds one violation of every ctxcheck rule.
package ctxbad

//dytis:ctxcheck

import (
	"context"
	"net"
	"sync"
	"time"

	"blockdep"
)

func send(ctx context.Context, ch chan int) {
	_ = ctx
	ch <- 1 // want `channel send may block without a ctx/deadline guard`
}

func recv(ctx context.Context, ch chan int) int {
	_ = ctx
	return <-ch // want `channel receive may block without a ctx/deadline guard`
}

func badSelect(ctx context.Context, a, b chan int) {
	_ = ctx
	select { // want `select has neither a default case nor a ctx.Done\(\)/timer case`
	case <-a:
	case <-b:
	}
}

func sleepy(ctx context.Context) {
	_ = ctx
	time.Sleep(time.Second) // want `time.Sleep in context-aware code ignores the ctx`
}

func wgWait(ctx context.Context, wg *sync.WaitGroup) {
	_ = ctx
	wg.Wait() // want `WaitGroup.Wait may block without a ctx/deadline guard`
}

func unarmedWrite(ctx context.Context, nc net.Conn, b []byte) {
	_ = ctx
	nc.Write(b) // want `Write on a deadline-capable connection without an armed deadline`
}

// readFrame is a local annotated blocker; calling it without an armed
// deadline in ctx-scoped code is flagged.
//
//dytis:blocks
func readFrame(nc net.Conn, b []byte) error {
	_, err := nc.Read(b)
	return err
}

func callLocalBlocker(ctx context.Context, nc net.Conn, b []byte) {
	_ = ctx
	readFrame(nc, b) // want `call to readFrame blocks on I/O without an armed deadline`
}

// Cross-package: blockdep.ReadFull carries //dytis:blocks in its facts.
func callDepBlocker(ctx context.Context, nc net.Conn, b []byte) {
	_ = ctx
	blockdep.ReadFull(nc, b) // want `call to ReadFull blocks on I/O without an armed deadline`
}

// armedFirst shows the same calls pass once a deadline is armed earlier in
// the function.
func armedFirst(ctx context.Context, nc net.Conn, b []byte) {
	_ = ctx
	nc.SetReadDeadline(time.Now().Add(time.Second))
	readFrame(nc, b)
	blockdep.ReadFull(nc, b)
}

var (
	_ = send
	_ = recv
	_ = badSelect
	_ = sleepy
	_ = wgWait
	_ = unarmedWrite
	_ = callLocalBlocker
	_ = callDepBlocker
	_ = armedFirst
)
