package metrics

import (
	"math/rand"
	"testing"
)

func uniformKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func TestUniformNeedsOneModel(t *testing.T) {
	keys := uniformKeys(100000, 1)
	if m := ModelCount(keys); m > 3 {
		t.Fatalf("uniform CDF needed %d models, want ~1", m)
	}
}

func TestClusteredNeedsManyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var keys []uint64
	for c := 0; c < 50; c++ {
		base := rng.Uint64() >> 1
		for i := 0; i < 2000; i++ {
			keys = append(keys, base+uint64(rng.Intn(1<<20)))
		}
	}
	mu := ModelCount(uniformKeys(len(keys), 3))
	mc := ModelCount(keys)
	if mc < 10*mu {
		t.Fatalf("clustered models %d not >> uniform %d", mc, mu)
	}
}

func TestSkewnessVarianceNormalizesByChunk(t *testing.T) {
	keys := uniformKeys(50000, 4)
	v := SkewnessVariance(keys, 5000)
	if v <= 0 || v > 1.5 {
		t.Fatalf("uniform skewness variance %.3f, want ~<=1/chunks..1", v)
	}
}

func TestKDDZeroForStationary(t *testing.T) {
	stationary := uniformKeys(50000, 5)
	drifting := make([]uint64, 50000)
	for i := range drifting {
		// Distribution shifts with insertion index.
		drifting[i] = uint64(i)<<40 + uint64(rand.New(rand.NewSource(int64(i))).Intn(1<<30))
	}
	ks := KDD(stationary, 5000)
	kd := KDD(drifting, 5000)
	if ks >= kd {
		t.Fatalf("stationary KDD %.4f not below drifting %.4f", ks, kd)
	}
	if ks > 0.05 {
		t.Fatalf("stationary KDD too high: %.4f", ks)
	}
}

func TestKDDShortDataset(t *testing.T) {
	if got := KDD(uniformKeys(100, 6), 1000); got != 0 {
		t.Fatalf("short dataset KDD = %v, want 0", got)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	a := uniformKeys(10000, 7)
	if d := KLDivergence(a, a); d > 1e-9 {
		t.Fatalf("KL(a||a)=%v, want 0", d)
	}
	b := make([]uint64, 10000)
	for i := range b {
		b[i] = uint64(i) // concentrated at the bottom of a's range? no: own range
	}
	// Compare concentrated vs uniform over the joint range.
	if d := KLDivergence(a, b); d <= 0 {
		t.Fatalf("KL of different distributions = %v, want > 0", d)
	}
}

func TestHistogram(t *testing.T) {
	keys := []uint64{0, 1, 2, 3, 100, 101, 102}
	h := Histogram(keys, 10)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(keys) {
		t.Fatalf("histogram total %d", total)
	}
	if h[0] != 4 {
		t.Fatalf("first bin %d want 4", h[0])
	}
	if h[9] != 3 {
		t.Fatalf("last bin %d want 3", h[9])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := Histogram(nil, 5)
	if len(h) != 5 {
		t.Fatal("wrong bin count")
	}
	for _, c := range h {
		if c != 0 {
			t.Fatal("non-zero bin for empty input")
		}
	}
}

func TestSkewnessEmptyInput(t *testing.T) {
	if SkewnessVariance(nil, 100) != 0 || ModelCount(nil) != 0 {
		t.Fatal("empty input should yield zero metrics")
	}
}
