package alex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dytis/internal/kv"
)

func TestEmptyIndex(t *testing.T) {
	x := New()
	if _, ok := x.Get(5); ok {
		t.Fatal("phantom key")
	}
	if x.Len() != 0 {
		t.Fatal("nonzero len")
	}
	if r := x.Scan(0, 5, nil); len(r) != 0 {
		t.Fatal("scan of empty returned results")
	}
}

func TestInsertGetSequential(t *testing.T) {
	x := New()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		x.Insert(i, i*3)
	}
	if x.Len() != n {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := x.Get(i)
		if !ok || v != i*3 {
			t.Fatalf("Get(%d)=%d,%v", i, v, ok)
		}
	}
}

func TestInsertGetRandomWide(t *testing.T) {
	x := New()
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 40000)
	for i := range keys {
		keys[i] = rng.Uint64()
		x.Insert(keys[i], uint64(i))
	}
	for i, k := range keys {
		v, ok := x.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%#x)", k)
		}
	}
}

func TestUpdateInPlace(t *testing.T) {
	x := New()
	x.Insert(9, 1)
	x.Insert(9, 2)
	if x.Len() != 1 {
		t.Fatalf("Len=%d", x.Len())
	}
	if v, _ := x.Get(9); v != 2 {
		t.Fatalf("v=%d", v)
	}
}

func TestBulkLoadThenLookup(t *testing.T) {
	var keys, vals []uint64
	for i := uint64(0); i < 100000; i++ {
		keys = append(keys, i*7)
		vals = append(vals, i)
	}
	x := New()
	x.BulkLoad(keys, vals)
	if x.Len() != len(keys) {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := 0; i < len(keys); i += 11 {
		v, ok := x.Get(keys[i])
		if !ok || v != vals[i] {
			t.Fatalf("Get(%d) after bulk load", keys[i])
		}
	}
	if _, ok := x.Get(3); ok {
		t.Fatal("phantom after bulk load")
	}
	st := x.Stats()
	if st.InnerNodes == 0 || st.DataNodes < 2 {
		t.Fatalf("bulk load built no tree: %+v", st)
	}
}

func TestBulkLoadThenInsertRest(t *testing.T) {
	// The ALEX-10 pattern: train on 10%, insert 90%.
	rng := rand.New(rand.NewSource(7))
	all := make([]uint64, 60000)
	for i := range all {
		all[i] = rng.Uint64()
	}
	loadN := len(all) / 10
	loaded := append([]uint64(nil), all[:loadN]...)
	sort.Slice(loaded, func(i, j int) bool { return loaded[i] < loaded[j] })
	vals := make([]uint64, loadN)
	x := New()
	x.BulkLoad(loaded, vals)
	for _, k := range all[loadN:] {
		x.Insert(k, 1)
	}
	for _, k := range all {
		if _, ok := x.Get(k); !ok {
			t.Fatalf("missing %#x", k)
		}
	}
}

func TestScan(t *testing.T) {
	x := New()
	for i := uint64(0); i < 20000; i++ {
		x.Insert(i*10, i)
	}
	got := x.Scan(95, 30, nil)
	if len(got) != 30 || got[0].Key != 100 {
		t.Fatalf("scan: n=%d first=%d", len(got), got[0].Key)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key != got[i-1].Key+10 {
			t.Fatalf("not consecutive at %d", i)
		}
	}
	if r := x.Scan(1<<63, 5, nil); len(r) != 0 {
		t.Fatal("scan past end returned results")
	}
}

func TestDelete(t *testing.T) {
	x := New()
	for i := uint64(0); i < 20000; i++ {
		x.Insert(i, i)
	}
	for i := uint64(0); i < 20000; i += 2 {
		if !x.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if x.Delete(0) {
		t.Fatal("double delete")
	}
	if x.Len() != 10000 {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := uint64(0); i < 20000; i++ {
		_, ok := x.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v", i, ok)
		}
	}
}

func TestDeleteMaxSentinelKey(t *testing.T) {
	// MaxUint64 collides with the gap sentinel; it must still round-trip.
	x := New()
	x.Insert(^uint64(0), 42)
	x.Insert(^uint64(0)-1, 41)
	if v, ok := x.Get(^uint64(0)); !ok || v != 42 {
		t.Fatalf("max key: %d,%v", v, ok)
	}
	if !x.Delete(^uint64(0)) {
		t.Fatal("delete max key")
	}
	if _, ok := x.Get(^uint64(0)); ok {
		t.Fatal("max key survived delete")
	}
	if v, ok := x.Get(^uint64(0) - 1); !ok || v != 41 {
		t.Fatal("neighbor of max key lost")
	}
}

func TestSkewedClusters(t *testing.T) {
	x := New()
	centers := []uint64{1 << 20, 1 << 44, 1 << 60}
	for _, c := range centers {
		for i := uint64(0); i < 20000; i++ {
			x.Insert(c+i, i)
		}
	}
	for _, c := range centers {
		for i := uint64(0); i < 20000; i += 13 {
			if _, ok := x.Get(c + i); !ok {
				t.Fatalf("missing %#x", c+i)
			}
		}
	}
	st := x.Stats()
	if st.SplitsSide+st.SplitsDown == 0 {
		t.Fatalf("no splits under skew: %+v", st)
	}
}

func TestDataNodeGappedArrayInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newDataNode(nil, nil, 64)
		ref := map[uint64]uint64{}
		for op := 0; op < 300; op++ {
			k := uint64(rng.Intn(500))
			if rng.Intn(4) == 0 {
				if d.remove(k) != (func() bool { _, ok := ref[k]; return ok })() {
					return false
				}
				delete(ref, k)
			} else if float64(d.num+1) <= maxDensity*float64(d.cap()) {
				v := rng.Uint64()
				if d.insert(k, v) != (func() bool { _, ok := ref[k]; return !ok })() {
					return false
				}
				ref[k] = v
			}
			// Invariant: raw key array is non-decreasing.
			for i := 1; i < d.cap(); i++ {
				if d.keys[i] < d.keys[i-1] {
					return false
				}
			}
		}
		if d.num != len(ref) {
			return false
		}
		for k, v := range ref {
			i, ok := d.find(k)
			if !ok || d.vals[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New()
		ref := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			k := uint64(rng.Intn(2000)) * 1000003
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := rng.Uint64()
				x.Insert(k, v)
				ref[k] = v
			case 3:
				_, in := ref[k]
				if x.Delete(k) != in {
					return false
				}
				delete(ref, k)
			case 4:
				gv, gok := x.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			}
		}
		if x.Len() != len(ref) {
			return false
		}
		// Full ordered scan must match the sorted reference.
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := x.Scan(0, len(ref)+1, nil)
		if len(got) != len(keys) {
			return false
		}
		for i, k := range keys {
			if got[i] != (kv.KV{Key: k, Value: ref[k]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	x := New()
	for i := uint64(0); i < 10000; i++ {
		x.Insert(i, i)
	}
	if x.MemoryFootprint() <= 0 {
		t.Fatal("footprint not positive")
	}
}
