package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dytis/internal/core"
)

func testOpts() Options {
	return Options{
		Index: core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2},
		Fsync: FsyncOff, // unit tests exercise logic, not the disk; crash tests use always
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// requireState asserts the store holds exactly the given key->val pairs.
func requireState(t *testing.T, s *Store, want map[uint64]uint64) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, v := range want {
		if got, ok := s.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
}

// TestReplayWithoutCheckpoint: close and reopen with nothing but log
// segments; every mutation kind replays.
func TestReplayWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	want := map[uint64]uint64{}
	for k := uint64(0); k < 500; k++ {
		if err := s.Insert(k<<40, k+1); err != nil {
			t.Fatal(err)
		}
		want[k<<40] = k + 1
	}
	if ok, err := s.Delete(3 << 40); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	delete(want, 3<<40)
	if ok, err := s.Delete(999 << 40); ok || err != nil { // absent key: logged no-op
		t.Fatalf("Delete(absent) = %v, %v", ok, err)
	}
	if err := s.InsertBatch([]uint64{1, 2, 3}, []uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	want[1], want[2], want[3] = 10, 20, 30
	found, err := s.DeleteBatch([]uint64{2, 777}, nil)
	if err != nil || !found[0] || found[1] {
		t.Fatalf("DeleteBatch = %v, %v", found, err)
	}
	delete(want, 2)
	requireState(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	requireState(t, s2, want)
	info := s2.Recovery()
	if info.CheckpointSeq != 0 || info.TornTail || info.Records == 0 {
		t.Fatalf("unexpected recovery info: %+v", info)
	}
}

// TestCheckpointTruncatesLog: a checkpoint leaves exactly one checkpoint
// and the fresh active segment; recovery loads it plus the tail.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	want := map[uint64]uint64{}
	for k := uint64(0); k < 1000; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
		want[k] = k + 1
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, ckpts, err := scanDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || len(ckpts) != 1 || segs[0] != 2 || ckpts[0] != 2 {
		t.Fatalf("after checkpoint: segments %v checkpoints %v, want [2] [2]", segs, ckpts)
	}
	// Tail writes after the checkpoint.
	for k := uint64(2000); k < 2100; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		want[k] = k
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	requireState(t, s2, want)
	info := s2.Recovery()
	if info.CheckpointSeq != 2 || info.CheckpointKeys != 1000 || info.Records != 100 {
		t.Fatalf("unexpected recovery info: %+v", info)
	}
	if got := s2.Metrics().ActiveSegment(); got != 3 {
		t.Fatalf("active segment = %d, want 3", got)
	}
}

// TestCorruptCheckpointFallsBack: a trashed newest checkpoint is skipped in
// favor of an older valid one, and the skip is counted, not fatal.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	for k := uint64(0); k < 300; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a corrupt checkpoint newer than the real one: recovery must try
	// it first (newest wins), reject it, and fall back to the valid seq-2
	// checkpoint plus the logged tail.
	segs, ckpts, err := scanDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || len(segs) != 1 || ckpts[0] != 2 {
		t.Fatalf("segments %v checkpoints %v, want [2] [2]", segs, ckpts)
	}
	bogus := filepath.Join(dir, checkpointName(ckpts[0]+1))
	if err := os.WriteFile(bogus, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	info := s2.Recovery()
	if info.CorruptCheckpoints != 1 || info.CheckpointSeq != 2 || info.Records != 1 {
		t.Fatalf("unexpected recovery info: %+v", info)
	}
	if s2.Len() != 301 {
		t.Fatalf("Len after fallback = %d, want 301", s2.Len())
	}
	if v, ok := s2.Get(1000); !ok || v != 1 {
		t.Fatalf("Get(1000) = %d,%v", v, ok)
	}
}

// TestAllCheckpointsCorruptRefuses: when checkpoints exist but none reads
// back, Open must fail with ErrCorrupt — the segments the checkpoints
// subsumed were truncated away, so "recovering" from the surviving tail
// alone would silently drop every acked write the checkpoints held.
func TestAllCheckpointsCorruptRefuses(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	for k := uint64(0); k < 1000; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: the only records still in the log.
	for k := uint64(5000); k < 5100; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, ckpts, err := scanDir(dir, nil)
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoints %v (err %v), want exactly one", ckpts, err)
	}
	path := filepath.Join(dir, checkpointName(ckpts[0]))
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with every checkpoint unreadable = %v, want ErrCorrupt", err)
	}
}

// TestFailedCheckpointPacedRetry: a checkpoint whose snapshot write fails
// must not churn — the next attempt reuses the already-rotated empty
// segment instead of minting another, and the size trigger resets so
// appends stop re-kicking a doomed checkpoint on every write.
func TestFailedCheckpointPacedRetry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	defer s.Close()
	for k := uint64(0); k < 200; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	// Make WriteSnapshotFile's rename fail deterministically: a directory
	// squatting on the checkpoint path (rotation goes 1 -> 2, so ckpt-2).
	blocker := filepath.Join(dir, checkpointName(2))
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		if err := s.Checkpoint(); err == nil {
			t.Fatal("checkpoint succeeded over blocked rename")
		}
	}
	s.mu.Lock()
	sinceCkpt, seq := s.sinceCkpt, s.log.seq
	s.mu.Unlock()
	if sinceCkpt != 0 {
		t.Fatalf("sinceCkpt = %d after failed checkpoint, want 0 (paced retry)", sinceCkpt)
	}
	if seq != 2 {
		t.Fatalf("active segment = %d after 3 failed checkpoints, want 2 (no rotation churn)", seq)
	}
	segs, _, err := scanDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments %v after 3 failed checkpoints, want [1 2]", segs)
	}
	if got := s.Metrics().CheckpointFailures(); got != 3 {
		t.Fatalf("checkpoint failures = %d, want 3", got)
	}
	// The store kept serving, and unblocking lets the retry land at the
	// same boundary.
	if err := s.Insert(9999, 1); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, ckpts, err := scanDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || len(segs) != 1 || ckpts[0] != segs[0] {
		t.Fatalf("after recovery checkpoint: segments %v checkpoints %v", segs, ckpts)
	}
}

// TestTornTailTolerated: a partial record at the tail of the newest segment
// is discarded, truncated away, and stays discarded across further reopens.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	for k := uint64(0); k < 100; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a torn record: a full header promising 17 bytes, 3 present.
	seg := filepath.Join(dir, segmentName(1))
	full := appendInsert(nil, 4242, 1)
	torn := full[:recHeaderLen+3]
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	s2 := mustOpen(t, dir, testOpts())
	info := s2.Recovery()
	if !info.TornTail || info.Records != 100 {
		t.Fatalf("unexpected recovery info: %+v", info)
	}
	if _, ok := s2.Get(4242); ok {
		t.Fatal("torn record's insert applied")
	}
	if s2.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s2.Len())
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("torn tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen once more: segment 1 is no longer the newest, and must now be
	// clean — the truncation is what keeps repeated crashes recoverable.
	s3 := mustOpen(t, dir, testOpts())
	defer s3.Close()
	if info := s3.Recovery(); info.TornTail || s3.Len() != 100 {
		t.Fatalf("second recovery: %+v, Len %d", info, s3.Len())
	}
}

// TestCorruptMiddleSegmentRefuses: a flipped byte in a non-newest segment is
// real corruption — Open fails with ErrCorrupt rather than serving wrong
// answers.
func TestCorruptMiddleSegmentRefuses(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 1 << 10 // force several segments
	opts.CheckpointBytes = -1   // no checkpoints: all segments replay
	s := mustOpen(t, dir, opts)
	for k := uint64(0); k < 2000; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("wanted several segments, got %v", segs)
	}
	// Flip a payload byte mid-way through the second segment.
	path := filepath.Join(dir, segmentName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt middle segment = %v, want ErrCorrupt", err)
	}
}

// TestSegmentGapRefuses: a missing segment between checkpoint and tail is
// lost acked data — typed refusal, not silence.
func TestSegmentGapRefuses(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 1 << 10
	opts.CheckpointBytes = -1
	s := mustOpen(t, dir, opts)
	for k := uint64(0); k < 2000; k++ {
		if err := s.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over segment gap = %v, want ErrCorrupt", err)
	}
}

// TestTmpSweep: an interrupted checkpoint's unrenamed snapshot is swept at
// Open and never mistaken for a checkpoint.
func TestTmpSweep(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, checkpointName(7)+".tmp123456")
	if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, testOpts())
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file not swept: %v", err)
	}
	if info := s.Recovery(); info.CheckpointSeq != 0 || info.CorruptCheckpoints != 0 {
		t.Fatalf("tmp file influenced recovery: %+v", info)
	}
}

// TestClosedStoreMutations: post-Close mutations fail typed; Close is
// idempotent.
func TestClosedStoreMutations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	if err := s.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(3, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Delete(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := s.InsertBatch([]uint64{9}, []uint64{9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("InsertBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := s.DeleteBatch([]uint64{1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("DeleteBatch after Close = %v, want ErrClosed", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	// Reads still serve the surviving in-memory structure.
	if v, ok := s.Get(1); !ok || v != 2 {
		t.Fatalf("Get after Close = %d,%v", v, ok)
	}
}

// TestFsyncAlwaysCounts: under FsyncAlways every mutation syncs before
// acking; under FsyncInterval the background loop syncs on its cadence.
func TestFsyncAlwaysCounts(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.Fsync = FsyncAlways
	s := mustOpen(t, dir, opts)
	for k := uint64(0); k < 10; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Fsyncs(); got < 10 {
		t.Fatalf("FsyncAlways issued %d fsyncs for 10 mutations", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	opts = testOpts()
	opts.Fsync = FsyncInterval
	opts.FsyncInterval = time.Millisecond
	s2 := mustOpen(t, t.TempDir(), opts)
	defer s2.Close()
	if err := s2.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s2.Metrics().Fsyncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchSplitsReplay: a batch larger than maxBatchPairs splits into
// several records and still replays completely.
func TestBatchSplitsReplay(t *testing.T) {
	dir := t.TempDir()
	n := maxBatchPairs + 100
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = uint64(i) + 1
	}
	s := mustOpen(t, dir, testOpts())
	if err := s.InsertBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Appends(); got != 2 {
		t.Fatalf("split batch appended %d records, want 2", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("Len = %d, want %d", s2.Len(), n)
	}
	if v, ok := s2.Get(uint64(n - 1)); !ok || v != uint64(n) {
		t.Fatalf("Get(last) = %d,%v", v, ok)
	}
}

// TestParseFsyncPolicy covers the flag surface.
func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"off": FsyncOff, "interval": FsyncInterval, "always": FsyncAlways} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestRecordRoundTrip pins the record codec against itself and against a
// deliberately flipped length bit (the checksum-covers-length argument).
func TestRecordRoundTrip(t *testing.T) {
	var log []byte
	log = appendInsert(log, 1, 2)
	log = appendDelete(log, 3)
	log = appendInsertBatch(log, []uint64{4, 5}, []uint64{40, 50})
	log = appendDeleteBatch(log, []uint64{6})

	type op struct {
		ins  bool
		k, v uint64
	}
	var got []op
	r := bytes.NewReader(log)
	var buf []byte
	for {
		payload, b, err := readRecord(r, buf)
		buf = b
		if err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		if err := replayPayload(payload,
			func(k, v uint64) { got = append(got, op{true, k, v}) },
			func(k uint64) { got = append(got, op{false, k, 0}) }); err != nil {
			t.Fatal(err)
		}
	}
	want := []op{{true, 1, 2}, {false, 3, 0}, {true, 4, 40}, {true, 5, 50}, {false, 6, 0}}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}

	// Flip a bit in the first record's length field: the checksum must
	// catch the re-delimiting rather than reading a garbage record.
	bad := append([]byte(nil), log...)
	binary.LittleEndian.PutUint32(bad[0:4], binary.LittleEndian.Uint32(bad[0:4])^8)
	if _, _, err := readRecord(bytes.NewReader(bad), nil); !errors.Is(err, errTorn) {
		t.Fatalf("flipped length read = %v, want errTorn", err)
	}
}
