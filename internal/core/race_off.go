//go:build !race

package core

// raceEnabled is false in normal builds: optimistic point lookups run the
// true lock-free seqlock probe (segment.tryGet, eh.get).
const raceEnabled = false
