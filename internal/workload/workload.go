// Package workload generates the seven YCSB-style operation mixes the DyTIS
// paper evaluates (§4.3): Load, A, B, C, D', E, and F, with keys chosen by a
// scrambled Zipfian(0.99) distribution over the loaded population, exactly
// the configuration the paper describes (including its modified D' — reads
// of existing rather than latest keys — and F — 50% reads, 50%
// read-modify-write).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType enumerates the operation kinds an index executes.
type OpType uint8

const (
	OpInsert OpType = iota // insert a new key
	OpRead
	OpUpdate // in-place value update of an existing key
	OpScan   // range scan of ScanLen keys
	OpRMW    // read-modify-write: read then update the same key
)

// Op is one benchmark operation.
type Op struct {
	Type OpType
	Key  uint64
	Val  uint64
}

// Kind names a YCSB-style workload.
type Kind string

const (
	Load   Kind = "Load"
	A      Kind = "A"
	B      Kind = "B"
	C      Kind = "C"
	DPrime Kind = "D'"
	E      Kind = "E"
	F      Kind = "F"
)

// Kinds lists the paper's seven workloads in presentation order.
var Kinds = []Kind{Load, A, B, C, DPrime, E, F}

// ScanLen is the paper's workload-E range length.
const ScanLen = 100

// Mix is the operation composition of a workload.
type Mix struct {
	Read, Update, Insert, Scan, RMW float64
	// LoadFrac is the fraction of the dataset inserted before the measured
	// ops run (the paper loads 100% for A/B/C/F and 80% for D'/E).
	LoadFrac float64
}

// MixFor returns the composition of the given workload kind.
func MixFor(k Kind) Mix {
	switch k {
	case Load:
		return Mix{Insert: 1, LoadFrac: 0}
	case A:
		return Mix{Read: 0.5, Update: 0.5, LoadFrac: 1}
	case B:
		return Mix{Read: 0.95, Update: 0.05, LoadFrac: 1}
	case C:
		return Mix{Read: 1, LoadFrac: 1}
	case DPrime:
		return Mix{Read: 0.95, Insert: 0.05, LoadFrac: 0.8}
	case E:
		return Mix{Scan: 0.95, Insert: 0.05, LoadFrac: 0.8}
	case F:
		return Mix{Read: 0.5, RMW: 0.5, LoadFrac: 1}
	default:
		panic(fmt.Sprintf("workload: unknown kind %q", k))
	}
}

// Zipf is the YCSB (Gray et al.) Zipfian generator with constant 0.99,
// scrambled with a 64-bit mixer so popular items spread over the key space.
type Zipf struct {
	items          uint64
	theta          float64
	alpha          float64
	zetan, zeta2   float64
	eta            float64
	rng            *rand.Rand
	scramble       bool
	scrambleModulo uint64
}

// NewZipf returns a Zipfian chooser over [0, items) with YCSB's default
// constant 0.99.
func NewZipf(items int, seed int64, scramble bool) *Zipf {
	const theta = 0.99
	if items < 1 {
		items = 1
	}
	z := &Zipf{
		items:    uint64(items),
		theta:    theta,
		rng:      rand.New(rand.NewSource(seed)),
		scramble: scramble,
	}
	z.zetan = zetaStatic(uint64(items), theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - pow(2/float64(items), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.scrambleModulo = uint64(items)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Next returns the next item index.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var item uint64
	switch {
	case uz < 1:
		item = 0
	case uz < 1+pow(0.5, z.theta):
		item = 1
	default:
		item = uint64(float64(z.items) * pow(z.eta*u-z.eta+1, z.alpha))
	}
	if item >= z.items {
		item = z.items - 1
	}
	if z.scramble {
		item = mix64(item) % z.scrambleModulo
	}
	return item
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Config controls op-stream generation.
type Config struct {
	Kind Kind
	// Keys is the dataset in insertion order.
	Keys []uint64
	// Ops is the number of measured operations (ignored for Load, which
	// always inserts the non-preloaded remainder).
	Ops int
	// Seed drives key choice.
	Seed int64
	// UniformChoice selects uniform instead of Zipfian key choice (the
	// paper reports similar results for both).
	UniformChoice bool
}

// Plan is a fully materialized benchmark phase: preload the first
// PreloadCount dataset keys, then execute Ops (generation is excluded from
// timing).
type Plan struct {
	Kind         Kind
	PreloadCount int
	Ops          []Op
}

// Build materializes the op stream for a workload over a dataset.
func Build(cfg Config) Plan {
	mix := MixFor(cfg.Kind)
	n := len(cfg.Keys)
	preload := int(mix.LoadFrac * float64(n))
	p := Plan{Kind: cfg.Kind, PreloadCount: preload}

	if cfg.Kind == Load {
		p.Ops = make([]Op, 0, n)
		for _, k := range cfg.Keys {
			p.Ops = append(p.Ops, Op{Type: OpInsert, Key: k, Val: k})
		}
		return p
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := NewZipf(preload, cfg.Seed+1, true)
	chooseExisting := func() uint64 {
		if cfg.UniformChoice {
			return cfg.Keys[rng.Intn(preload)]
		}
		return cfg.Keys[zipf.Next()]
	}

	ops := cfg.Ops
	// Workloads with inserts are bounded by the keys that remain unloaded
	// (the paper measures "until all the keys in the dataset are inserted").
	insertBudget := n - preload
	nextInsert := preload
	p.Ops = make([]Op, 0, ops)
	for i := 0; i < ops; i++ {
		r := rng.Float64()
		switch {
		case r < mix.Read:
			p.Ops = append(p.Ops, Op{Type: OpRead, Key: chooseExisting()})
		case r < mix.Read+mix.Update:
			p.Ops = append(p.Ops, Op{Type: OpUpdate, Key: chooseExisting(), Val: uint64(i)})
		case r < mix.Read+mix.Update+mix.RMW:
			p.Ops = append(p.Ops, Op{Type: OpRMW, Key: chooseExisting(), Val: uint64(i)})
		case r < mix.Read+mix.Update+mix.RMW+mix.Scan:
			p.Ops = append(p.Ops, Op{Type: OpScan, Key: chooseExisting()})
		default: // insert
			if insertBudget == 0 {
				p.Ops = append(p.Ops, Op{Type: OpRead, Key: chooseExisting()})
				continue
			}
			p.Ops = append(p.Ops, Op{Type: OpInsert, Key: cfg.Keys[nextInsert], Val: 1})
			nextInsert++
			insertBudget--
		}
	}
	return p
}
