// Package xindex implements an XIndex-style concurrent learned index (Tang
// et al., PPoPP 2020), the concurrent-learned-index baseline of the DyTIS
// paper. The structure has two levels: a learned root routing keys into
// groups, and per-group sorted arrays with a small sorted delta buffer that
// absorbs inserts. A compaction pass (run by a background thread in
// concurrent mode, inline otherwise) merges each group's delta into its
// array, retrains the group model, and splits oversized groups. The paper
// attributes XIndex's lower throughput to exactly this delta-index +
// background-compaction machinery; the mechanisms are reproduced here.
package xindex

import (
	"sort"
	"sync"
	"sync/atomic"

	"dytis/internal/kv"
	"dytis/internal/linmod"
)

const (
	// deltaMax triggers compaction when a group's delta buffer exceeds it.
	deltaMax = 256
	// groupTarget is the bulk-load group size; groups split at 4x.
	groupTarget = 4096
	maxGroup    = 4 * groupTarget
)

type group struct {
	mu    sync.RWMutex
	min   uint64 // smallest key routed here (routing boundary)
	model linmod.Model
	keys  []uint64 // sorted main array
	vals  []uint64
	dead  []uint64 // tombstone bitmap over the main array
	ndead int
	dkeys []uint64 // sorted delta buffer
	dvals []uint64
}

func (g *group) isDead(i int) bool { return g.dead[i>>6]&(1<<(uint(i)&63)) != 0 }
func (g *group) setDead(i int)     { g.dead[i>>6] |= 1 << (uint(i) & 63) }
func (g *group) clearDead(i int)   { g.dead[i>>6] &^= 1 << (uint(i) & 63) }

// Stats counts the paper-relevant overhead sources.
type Stats struct {
	Compactions int64
	GroupSplits int64
	Groups      int
}

// root is the immutable routing snapshot; group splits install a new root
// (copy-on-write), so readers only need an atomic pointer load.
type root struct {
	mins   []uint64
	groups []*group
	model  linmod.Model
}

// Index is an XIndex-like learned index. With concurrent=true all operations
// are safe for concurrent use and compaction runs on a background goroutine;
// Close must be called to stop it.
type Index struct {
	rootPtr atomic.Pointer[root]
	rootMu  sync.Mutex // serializes root replacement (splits, bulk load)
	conc    bool
	n       atomic.Int64

	compactCh chan *group
	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup

	compactions atomic.Int64
	splits      atomic.Int64
}

// New returns an empty index. concurrent selects the thread-safe variant
// with a background compaction thread.
func New(concurrent bool) *Index {
	x := &Index{conc: concurrent, closed: make(chan struct{})}
	g := &group{min: 0, dead: []uint64{}}
	x.rootPtr.Store(&root{mins: []uint64{0}, groups: []*group{g}})
	if concurrent {
		x.compactCh = make(chan *group, 1024)
		x.wg.Add(1)
		go x.compactor()
	}
	return x
}

// Close stops the background compaction thread (no-op in single-thread mode).
func (x *Index) Close() {
	x.closeOnce.Do(func() {
		close(x.closed)
		x.wg.Wait()
	})
}

func (x *Index) compactor() {
	defer x.wg.Done()
	for {
		select {
		case g := <-x.compactCh:
			x.compact(g)
		case <-x.closed:
			return
		}
	}
}

// groupFor routes a key: learned root prediction plus a local correction
// search over the group boundary keys.
func (r *root) groupFor(k uint64) (*group, int) {
	n := len(r.mins)
	i := r.model.PredictClamped(k, n)
	// Correct: find the last i with mins[i] <= k.
	for i+1 < n && r.mins[i+1] <= k {
		i++
	}
	for i > 0 && r.mins[i] > k {
		i--
	}
	return r.groups[i], i
}

// BulkLoad replaces the contents with the ascending keys (the 70% training
// load the paper uses for XIndex).
func (x *Index) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("xindex: mismatched bulk-load slices")
	}
	x.rootMu.Lock()
	defer x.rootMu.Unlock()
	var groups []*group
	var mins []uint64
	if len(keys) == 0 {
		groups = []*group{{min: 0, dead: []uint64{}}}
		mins = []uint64{0}
	}
	for i := 0; i < len(keys); i += groupTarget {
		end := i + groupTarget
		if end > len(keys) {
			end = len(keys)
		}
		g := &group{
			min:  keys[i],
			keys: append([]uint64(nil), keys[i:end]...),
			vals: append([]uint64(nil), values[i:end]...),
		}
		if i == 0 {
			g.min = 0 // the first group must cover the whole lower range
		}
		g.dead = make([]uint64, (len(g.keys)+63)/64)
		g.model = linmod.Fit(g.keys, len(g.keys))
		groups = append(groups, g)
		mins = append(mins, g.min)
	}
	x.installRoot(mins, groups)
	x.n.Store(int64(len(keys)))
}

func (x *Index) installRoot(mins []uint64, groups []*group) {
	x.rootPtr.Store(&root{mins: mins, groups: groups, model: linmod.Fit(mins, len(mins))})
}

// searchMain returns the main-array index of k, or -1.
func (g *group) searchMain(k uint64) int {
	n := len(g.keys)
	if n == 0 {
		return -1
	}
	i := g.model.PredictClamped(k, n)
	// Exponential correction around the prediction.
	lo, hi := i, i+1
	step := 1
	for lo > 0 && g.keys[lo] > k {
		lo -= step
		step <<= 1
	}
	if lo < 0 {
		lo = 0
	}
	step = 1
	for hi < n && g.keys[hi-1] < k {
		hi += step
		step <<= 1
	}
	if hi > n {
		hi = n
	}
	j := lo + sort.Search(hi-lo, func(m int) bool { return g.keys[lo+m] >= k })
	if j < n && g.keys[j] == k {
		return j
	}
	return -1
}

func searchDelta(dk []uint64, k uint64) (int, bool) {
	i := sort.Search(len(dk), func(m int) bool { return dk[m] >= k })
	return i, i < len(dk) && dk[i] == k
}

// Get returns the value for key.
func (x *Index) Get(key uint64) (uint64, bool) {
	g, _ := x.rootPtr.Load().groupFor(key)
	if x.conc {
		g.mu.RLock()
		defer g.mu.RUnlock()
	}
	if i, ok := searchDelta(g.dkeys, key); ok {
		return g.dvals[i], true
	}
	if j := g.searchMain(key); j >= 0 && !g.isDead(j) {
		return g.vals[j], true
	}
	return 0, false
}

// lockRouted returns key's group with its write lock held, revalidating the
// routing after acquiring the lock: a concurrent group split installs the new
// root while holding the old group's lock, so a re-check under the lock
// guarantees writes never land in an unrouted group.
func (x *Index) lockRouted(key uint64) *group {
	for {
		g, _ := x.rootPtr.Load().groupFor(key)
		g.mu.Lock()
		if g2, _ := x.rootPtr.Load().groupFor(key); g2 == g {
			return g
		}
		g.mu.Unlock()
	}
}

// Insert stores or updates key.
func (x *Index) Insert(key, value uint64) {
	var g *group
	if x.conc {
		g = x.lockRouted(key)
	} else {
		g, _ = x.rootPtr.Load().groupFor(key)
	}
	var needCompact bool
	if j := g.searchMain(key); j >= 0 {
		if g.isDead(j) {
			g.clearDead(j)
			g.ndead--
			x.n.Add(1)
		}
		g.vals[j] = value
	} else if i, ok := searchDelta(g.dkeys, key); ok {
		g.dvals[i] = value
	} else {
		g.dkeys = append(g.dkeys, 0)
		g.dvals = append(g.dvals, 0)
		copy(g.dkeys[i+1:], g.dkeys[i:])
		copy(g.dvals[i+1:], g.dvals[i:])
		g.dkeys[i], g.dvals[i] = key, value
		x.n.Add(1)
		needCompact = len(g.dkeys) > deltaMax
	}
	if x.conc {
		g.mu.Unlock()
		if needCompact {
			select {
			case x.compactCh <- g:
			default: // queue full; the next overflow re-triggers
			}
		}
	} else if needCompact {
		x.compact(g)
	}
}

// compact merges a group's delta into its main array, drops tombstones,
// retrains the model, and splits the group when oversized.
func (x *Index) compact(g *group) {
	if x.conc {
		g.mu.Lock()
	}
	if len(g.dkeys) == 0 && g.ndead == 0 {
		if x.conc {
			g.mu.Unlock()
		}
		return
	}
	merged := make([]uint64, 0, len(g.keys)+len(g.dkeys))
	mvals := make([]uint64, 0, len(g.keys)+len(g.dkeys))
	i, j := 0, 0
	for i < len(g.keys) || j < len(g.dkeys) {
		switch {
		case i == len(g.keys) || (j < len(g.dkeys) && g.dkeys[j] < g.keys[i]):
			merged = append(merged, g.dkeys[j])
			mvals = append(mvals, g.dvals[j])
			j++
		default:
			if !g.isDead(i) {
				merged = append(merged, g.keys[i])
				mvals = append(mvals, g.vals[i])
			}
			i++
		}
	}
	g.keys, g.vals = merged, mvals
	g.dead = make([]uint64, (len(merged)+63)/64)
	g.ndead = 0
	g.dkeys, g.dvals = nil, nil
	g.model = linmod.Fit(g.keys, len(g.keys))
	x.compactions.Add(1)
	big := len(g.keys) > maxGroup
	if x.conc {
		g.mu.Unlock()
	}
	if big {
		x.splitGroup(g)
	}
}

// splitGroup halves an oversized group and installs a copy-on-write root.
func (x *Index) splitGroup(g *group) {
	x.rootMu.Lock()
	defer x.rootMu.Unlock()
	r := x.rootPtr.Load()
	idx := -1
	for i, gg := range r.groups {
		if gg == g {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // group already replaced by a concurrent split
	}
	if x.conc {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	if len(g.keys) <= maxGroup || len(g.dkeys) > 0 {
		return // state changed since the trigger
	}
	mid := len(g.keys) / 2
	left := &group{min: g.min,
		keys: append([]uint64(nil), g.keys[:mid]...),
		vals: append([]uint64(nil), g.vals[:mid]...)}
	right := &group{min: g.keys[mid],
		keys: append([]uint64(nil), g.keys[mid:]...),
		vals: append([]uint64(nil), g.vals[mid:]...)}
	for _, ng := range []*group{left, right} {
		ng.dead = make([]uint64, (len(ng.keys)+63)/64)
		ng.model = linmod.Fit(ng.keys, len(ng.keys))
	}
	mins := make([]uint64, 0, len(r.mins)+1)
	groups := make([]*group, 0, len(r.groups)+1)
	mins = append(mins, r.mins[:idx]...)
	groups = append(groups, r.groups[:idx]...)
	mins = append(mins, left.min, right.min)
	groups = append(groups, left, right)
	mins = append(mins, r.mins[idx+1:]...)
	groups = append(groups, r.groups[idx+1:]...)
	x.installRoot(mins, groups)
	x.splits.Add(1)
}

// Delete removes key, reporting presence. Main-array hits become tombstones
// reclaimed by the next compaction.
func (x *Index) Delete(key uint64) bool {
	var g *group
	if x.conc {
		g = x.lockRouted(key)
		defer g.mu.Unlock()
	} else {
		g, _ = x.rootPtr.Load().groupFor(key)
	}
	if i, ok := searchDelta(g.dkeys, key); ok {
		g.dkeys = append(g.dkeys[:i], g.dkeys[i+1:]...)
		g.dvals = append(g.dvals[:i], g.dvals[i+1:]...)
		x.n.Add(-1)
		return true
	}
	if j := g.searchMain(key); j >= 0 && !g.isDead(j) {
		g.setDead(j)
		g.ndead++
		x.n.Add(-1)
		return true
	}
	return false
}

// Scan appends up to max pairs with key >= start in ascending order, merging
// each group's main array and delta buffer on the fly.
func (x *Index) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	r := x.rootPtr.Load()
	_, gi := r.groupFor(start)
	taken := 0
	for ; gi < len(r.groups) && taken < max; gi++ {
		g := r.groups[gi]
		if x.conc {
			g.mu.RLock()
		}
		i := sort.Search(len(g.keys), func(m int) bool { return g.keys[m] >= start })
		j := sort.Search(len(g.dkeys), func(m int) bool { return g.dkeys[m] >= start })
		for taken < max && (i < len(g.keys) || j < len(g.dkeys)) {
			if i < len(g.keys) && g.isDead(i) {
				i++
				continue
			}
			if j == len(g.dkeys) || (i < len(g.keys) && g.keys[i] < g.dkeys[j]) {
				dst = append(dst, kv.KV{Key: g.keys[i], Value: g.vals[i]})
				i++
			} else {
				dst = append(dst, kv.KV{Key: g.dkeys[j], Value: g.dvals[j]})
				j++
			}
			taken++
		}
		if x.conc {
			g.mu.RUnlock()
		}
	}
	return dst
}

// Len returns the number of live keys.
func (x *Index) Len() int { return int(x.n.Load()) }

// Stats snapshots overhead counters.
func (x *Index) Stats() Stats {
	return Stats{
		Compactions: x.compactions.Load(),
		GroupSplits: x.splits.Load(),
		Groups:      len(x.rootPtr.Load().groups),
	}
}

// MemoryFootprint estimates heap bytes used by the structure, including
// delta buffers — the paper highlights XIndex's extra memory for deltas.
func (x *Index) MemoryFootprint() int64 {
	r := x.rootPtr.Load()
	b := int64(len(r.mins)) * 16
	for _, g := range r.groups {
		if x.conc {
			g.mu.RLock()
		}
		b += int64(len(g.keys))*16 + int64(cap(g.dkeys))*16 + int64(len(g.dead))*8 + 96
		if x.conc {
			g.mu.RUnlock()
		}
	}
	return b
}
