// Package metricgood exposes a small, fully-honest metric surface:
// metriccheck must accept it without diagnostics.
package metricgood

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Every registered series must appear in the local docs file.
//
//dytis:metric-docs docs.md

// Metrics carries the field-backed counters.
type Metrics struct {
	//dytis:series dytis_good_requests_total
	requests atomic.Int64
	//dytis:series dytis_good_latency
	latency [4]atomic.Int64
}

func (m *Metrics) bump(shard int) {
	m.requests.Add(1)
	m.latency[shard].Add(2)
}

// WritePrometheus registers the field-backed series and one derived gauge
// (declared on the exporter itself, so no mutation check applies).
//
//dytis:series dytis_good_depth
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "dytis_good_requests_total %d\n", m.requests.Load())
	var sum int64
	for i := range m.latency {
		sum += m.latency[i].Load()
	}
	fmt.Fprintf(w, "dytis_good_latency_sum %d\n", sum)
	fmt.Fprintf(w, "dytis_good_latency_count %d\n", 4)
	fmt.Fprintf(w, "dytis_good_latency{q=\"0.5\"} %d\n", sum/4)
	fmt.Fprintf(w, "dytis_good_depth %d\n", 0)
}

var _ = (*Metrics).bump
