package proto

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder — the
// exact surface a hostile client reaches once ReadFrame has accepted a
// length prefix. The decoder must never panic, never allocate beyond the
// validated counts, and must re-encode anything it accepts into a frame
// that decodes to the same request (encode∘decode is the identity on the
// decoder's accepted set, which is how corrupted-but-parseable frames are
// caught semantically, not just memory-safely).
func FuzzDecodeRequest(f *testing.F) {
	seed := func(r *Request) {
		frame, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(&Request{ID: 1, Op: OpPing})
	seed(&Request{ID: 2, Op: OpGet, Key: 42})
	seed(&Request{ID: 3, Op: OpInsert, Key: 1, Val: 2})
	seed(&Request{ID: 4, Op: OpScan, Key: 9, Max: 100})
	seed(&Request{ID: 5, Op: OpGetBatch, Keys: []uint64{1, 2, 3}})
	seed(&Request{ID: 6, Op: OpInsertBatch, Keys: []uint64{7}, Vals: []uint64{8}})
	seed(&Request{ID: 7, Op: OpDeleteBatch, Keys: []uint64{0, ^uint64(0)}})
	seed(&Request{ID: 8, Op: OpHello, Ver: MaxVersion, Feats: AllFeatures})
	seed(&Request{ID: 9, Op: OpScanStart, Key: 42, ScanMax: 1 << 20, Max: 512, Credits: 8})
	seed(&Request{ID: 10, Op: OpScanCredit, Credits: 1})
	seed(&Request{ID: 11, Op: OpScanCancel})
	seed(&Request{ID: 12, Op: OpShardInfo})
	seed(&Request{ID: 13, Op: OpMapGet})
	seed(&Request{ID: 14, Op: OpMapSet, Lo: 0, Hi: ^uint64(0), MapBlob: []byte{1, 2, 3}})
	seed(&Request{ID: 15, Op: OpHandoverStart, Lo: 1, Hi: 9, Addr: "127.0.0.1:7071"})
	seed(&Request{ID: 16, Op: OpHandoverStatus})
	seed(&Request{ID: 17, Op: OpImportStart, Lo: 1, Hi: 9})
	seed(&Request{ID: 18, Op: OpImportBatch, Keys: []uint64{1}, Vals: []uint64{2}})
	seed(&Request{ID: 19, Op: OpImportEnd, Commit: true})
	seed(&Request{ID: 20, Op: OpMirror, Del: true, Key: 5})
	seed(&Request{ID: 21, Op: OpGet, Key: 7, Epoch: 3})
	seed(&Request{ID: 22, Op: OpScan, Key: 7, Max: 10, Epoch: 1, TimeoutMS: 50})
	f.Add([]byte{})
	f.Add(make([]byte, 9))

	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := DecodeRequest(body, &req); err != nil {
			return
		}
		// Accepted input must re-encode to a body that decodes identically.
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		var again Request
		if err := DecodeRequest(frame[4:], &again); err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !bytes.Equal(frame[4:], body) {
			// The wire format has exactly one encoding per request, so any
			// accepted body must be the canonical one.
			t.Fatalf("non-canonical body accepted:\n in: %x\nout: %x", body, frame[4:])
		}
	})
}

// FuzzDecodeResponse is the client-side mirror: arbitrary bytes at the
// response decoder, which a hostile or corrupted server reaches.
func FuzzDecodeResponse(f *testing.F) {
	seed := func(r *Response) {
		frame, err := AppendResponse(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(&Response{ID: 1, Op: OpPing})
	seed(&Response{ID: 2, Op: OpGet, Found: true, Val: 3})
	seed(&Response{ID: 3, Op: OpScan, Keys: []uint64{1, 2}, Vals: []uint64{3, 4}})
	seed(&Response{ID: 4, Op: OpGetBatch, Vals: []uint64{1}, Founds: []bool{true}})
	seed(&Response{ID: 5, Op: OpDeleteBatch, Founds: []bool{false, true}})
	seed(&Response{ID: 6, Op: OpLen, Val: 99})
	seed(&Response{ID: 7, Op: OpGet, Status: StatusErr, Msg: "boom"})
	seed(&Response{ID: 8, Op: OpHello, Ver: Version2, Feats: AllFeatures})
	seed(&Response{ID: 9, Op: OpScanChunk, Keys: []uint64{1, 2}, Vals: []uint64{3, 4}})
	seed(&Response{ID: 10, Op: OpScanEnd, Val: 1 << 20})
	seed(&Response{ID: 11, Op: OpScanEnd, Status: StatusShuttingDown, Msg: "draining"})
	seed(&Response{ID: 12, Op: OpShardInfo, Lo: 0, Hi: 99, Epoch: 4, State: 1})
	seed(&Response{ID: 13, Op: OpMapGet, MapBlob: []byte{9, 9}})
	seed(&Response{ID: 14, Op: OpHandoverStatus, State: 2, Copied: 100, Mirrored: 3})
	seed(&Response{ID: 15, Op: OpImportBatch, Applied: 5})
	seed(&Response{ID: 16, Op: OpGet, Status: StatusWrongShard, Msg: "not mine"})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		var resp Response
		if err := DecodeResponse(body, &resp); err != nil {
			return
		}
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %+v: %v", resp, err)
		}
		var again Response
		if err := DecodeResponse(frame[4:], &again); err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
	})
}

// FuzzDecodeResponseV2 is FuzzDecodeResponse at the negotiated v2 encoding,
// where a StatusOverload response carries a typed retry-after field.
// Like the v1 fuzzer it asserts re-encode/re-decode stability rather than
// byte-canonicality: found-flag bytes are deliberately permissive (any
// nonzero is true), so the byte-level property holds only for the flag-free
// frame kinds.
func FuzzDecodeResponseV2(f *testing.F) {
	seed := func(r *Response) {
		frame, err := AppendResponseV(nil, r, Version2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(&Response{ID: 1, Op: OpHello, Ver: Version2, Feats: AllFeatures})
	seed(&Response{ID: 2, Op: OpGet, Status: StatusOverload, RetryAfterMS: 50, Msg: "50ms"})
	seed(&Response{ID: 3, Op: OpScanChunk, Keys: []uint64{1, 2}, Vals: []uint64{3, 4}})
	seed(&Response{ID: 4, Op: OpScanEnd, Val: 7})
	seed(&Response{ID: 5, Op: OpScanStart, Status: StatusBadRequest, Msg: "no stream"})
	seed(&Response{ID: 6, Op: OpGet, Status: StatusWrongShard, MapBlob: []byte{1, 2}, Msg: "moved"})
	seed(&Response{ID: 7, Op: OpShardInfo, Lo: 1, Hi: 2, Epoch: 3, State: 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		var resp Response
		if err := DecodeResponseV(body, &resp, Version2); err != nil {
			return
		}
		frame, err := AppendResponseV(nil, &resp, Version2)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %+v: %v", resp, err)
		}
		var again Response
		if err := DecodeResponseV(frame[4:], &again, Version2); err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
	})
}

// FuzzFrameCRC is the checksum-canonicality property from the issue: seal an
// arbitrary frame, flip any one bit the fuzzer picks, and the sealed read
// must fail — a corrupted-but-parseable frame can no longer reach a decoder
// once FeatCRC is negotiated.
func FuzzFrameCRC(f *testing.F) {
	seedBody := func(r *Request) {
		frame, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:], uint32(0))
	}
	seedBody(&Request{ID: 1, Op: OpPing})
	seedBody(&Request{ID: 2, Op: OpInsert, Key: 1, Val: 2})
	seedBody(&Request{ID: 3, Op: OpScanStart, Key: 9, ScanMax: 100, Max: 64, Credits: 4})
	f.Add([]byte("arbitrary, not even a valid body"), uint32(71))

	f.Fuzz(func(t *testing.T, body []byte, flipBit uint32) {
		if len(body) > maxBody {
			return
		}
		var sealed []byte
		sealed = appendU32(sealed, uint32(len(body)))
		sealed = append(sealed, body...)
		sealed = SealFrame(sealed, 0)

		// The untouched sealed frame must verify (when long enough to frame).
		got, _, err := ReadFrameCRC(bytes.NewReader(sealed), nil)
		if len(body) >= prefixLen {
			if err != nil {
				t.Fatalf("sealed frame does not verify: %v", err)
			}
			if !bytes.Equal(got, body) {
				t.Fatalf("sealed frame read back wrong body")
			}
		} else if err == nil {
			t.Fatalf("undersized body %d framed", len(body))
		}

		// Flip exactly one bit anywhere in the sealed frame: it must not read
		// back clean. Framing errors are fine; success is the only failure.
		mut := append([]byte(nil), sealed...)
		bit := int(flipBit) % (len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		if got, _, err := ReadFrameCRC(bytes.NewReader(mut), nil); err == nil {
			t.Fatalf("bit flip %d accepted: body %x", bit, got)
		}
	})
}
