package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"dytis/internal/kv"
	"dytis/internal/lathist"
	"dytis/internal/workload"
)

// Config describes one benchmark cell: an index running one workload over
// one dataset.
type Config struct {
	Factory Factory
	// Dataset is the display name; Keys are its keys in insertion order.
	Dataset string
	Keys    []uint64
	Kind    workload.Kind
	// Ops is the measured operation count for non-Load workloads
	// (default: half the dataset, the paper's ">= 50% of the dataset").
	Ops int
	// BulkFrac bulk-loads this fraction of the preload population (the
	// ALEX-10/70 and XIndex-70 configurations). Indexes without bulk
	// loading insert those keys instead (unmeasured).
	BulkFrac float64
	// Threads fans measured ops out round-robin (Figure 12); 1 by default.
	Threads int
	Seed    int64
	// UniformChoice switches key choice from Zipfian to uniform.
	UniformChoice bool
}

// Result is one benchmark measurement.
type Result struct {
	Index   string
	Dataset string
	Kind    workload.Kind
	Ops     int
	Elapsed time.Duration
	Hist    lathist.Hist
	// FootprintBytes is the index's own structure estimate (0 if unknown).
	FootprintBytes int64
	// HeapBytes is the process heap growth across the run (includes the
	// dataset and harness, so it upper-bounds the index).
	HeapBytes int64
	// Unsupported marks workload/index combinations that cannot run (e.g.
	// scans on a pure hash index).
	Unsupported bool
}

// MopsPerSec returns throughput in million operations per second.
func (r Result) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// Run executes one benchmark cell.
func Run(cfg Config) Result {
	res := Result{Index: cfg.Factory.Name, Dataset: cfg.Dataset, Kind: cfg.Kind}
	if cfg.Kind == workload.E && !cfg.Factory.Ordered {
		res.Unsupported = true
		return res
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = len(cfg.Keys) / 2
	}
	plan := workload.Build(workload.Config{
		Kind: cfg.Kind, Keys: cfg.Keys, Ops: cfg.Ops,
		Seed: cfg.Seed, UniformChoice: cfg.UniformChoice,
	})

	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	inst := cfg.Factory.New()
	defer inst.Close()

	// Setup phase (unmeasured): bulk load + preload.
	if cfg.Kind == workload.Load {
		// For Load, the bulk fraction comes out of the whole dataset and the
		// measured phase inserts the remainder ("the results do not include
		// bulk loaded keys").
		bulkN := int(cfg.BulkFrac * float64(len(cfg.Keys)))
		if bulkN > 0 {
			ks, vs := sortedCopy(cfg.Keys[:bulkN])
			if !inst.BulkLoad(ks, vs) {
				for i := range ks {
					inst.Insert(ks[i], vs[i])
				}
			}
		}
		plan.Ops = plan.Ops[bulkN:]
	} else {
		bulkN := int(cfg.BulkFrac * float64(plan.PreloadCount))
		if bulkN > 0 && cfg.BulkFrac > 0 {
			ks, vs := sortedCopy(cfg.Keys[:bulkN])
			if !inst.BulkLoad(ks, vs) {
				bulkN = 0
			}
		}
		for _, k := range cfg.Keys[bulkN:plan.PreloadCount] {
			inst.Insert(k, k)
		}
	}

	res.Ops = len(plan.Ops)
	hists := make([]lathist.Hist, cfg.Threads)
	start := time.Now()
	if cfg.Threads == 1 {
		execOps(inst, plan.Ops, &hists[0])
	} else {
		var wg sync.WaitGroup
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				execStrided(inst, plan.Ops, t, cfg.Threads, &hists[t])
			}(t)
		}
		wg.Wait()
	}
	res.Elapsed = time.Since(start)
	for i := range hists {
		res.Hist.Merge(&hists[i])
	}
	res.FootprintBytes = inst.Footprint()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if msAfter.HeapAlloc > msBefore.HeapAlloc {
		res.HeapBytes = int64(msAfter.HeapAlloc - msBefore.HeapAlloc)
	}
	return res
}

func execOps(inst Instance, ops []workload.Op, h *lathist.Hist) {
	var scanBuf []kv.KV
	for _, op := range ops {
		t0 := time.Now()
		ExecOp(inst, op, &scanBuf)
		h.Record(time.Since(t0))
	}
}

// execStrided executes ops[t::stride], the round-robin assignment the paper
// uses for its concurrency experiment.
func execStrided(inst Instance, ops []workload.Op, t, stride int, h *lathist.Hist) {
	var scanBuf []kv.KV
	for i := t; i < len(ops); i += stride {
		t0 := time.Now()
		ExecOp(inst, ops[i], &scanBuf)
		h.Record(time.Since(t0))
	}
}

// ExecOp applies one workload operation to an index instance; scanBuf is the
// reusable scan result buffer. Exposed for the testing.B benchmarks.
func ExecOp(inst Instance, op workload.Op, scanBuf *[]kv.KV) {
	switch op.Type {
	case workload.OpInsert, workload.OpUpdate:
		inst.Insert(op.Key, op.Val)
	case workload.OpRead:
		inst.Get(op.Key)
	case workload.OpScan:
		*scanBuf, _ = inst.Scan(op.Key, workload.ScanLen, (*scanBuf)[:0])
	case workload.OpRMW:
		v, _ := inst.Get(op.Key)
		inst.Insert(op.Key, v+op.Val)
	}
}

// WriteTable renders results as an aligned table: one row per (index,
// dataset), one column block per workload, in Mops/s.
func WriteTable(w io.Writer, results []Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "index\tdataset\tworkload\tMops/s\tavg\tp99\tp99.99\n")
	for _, r := range results {
		if r.Unsupported {
			fmt.Fprintf(tw, "%s\t%s\t%s\tn/a\t\t\t\n", r.Index, r.Dataset, r.Kind)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%v\t%v\t%v\n",
			r.Index, r.Dataset, r.Kind, r.MopsPerSec(),
			r.Hist.Mean(), r.Hist.Quantile(0.99), r.Hist.Quantile(0.9999))
	}
	tw.Flush()
}
