package proto

// Per-frame CRC32C trailers (protocol v2, FeatCRC). After a successful
// HELLO exchange that grants FeatCRC, every frame in both directions gains
// a 4-byte trailer:
//
//	uint32  body length (big endian)     ─┐
//	...     body                          ├─ covered by the checksum
//	uint32  crc32c(length prefix ‖ body) ─┘  NOT counted in the length
//
// Covering the length prefix matters: a flipped length bit would otherwise
// silently re-delimit the stream into plausible frames; with it covered,
// the misaligned trailer fails verification instead. The trailer is not
// counted in the length prefix, so the framing functions above are
// untouched — sealing and verification compose around them. CRC32C is the
// Castagnoli polynomial, which hash/crc32 computes with the SSE4.2/ARMv8
// instruction where available, so the per-frame cost is a few ns/KB.
//
// The HELLO request and response themselves are always unsealed (the
// feature is not agreed yet while they are in flight); the window this
// leaves open is discussed in DESIGN.md §9.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// TrailerLen is the size of the CRC32C frame trailer.
const TrailerLen = 4

// ErrChecksum is the error of a frame whose CRC32C trailer does not match
// its contents. Match with errors.Is.
var ErrChecksum = errors.New("proto: frame checksum mismatch")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C computes the Castagnoli CRC of data — the same polynomial (and
// therefore the same SSE4.2/ARMv8 fast path) the frame trailers use. It is
// exported for the other on-disk/on-wire integrity checks in this module
// (the WAL's per-record checksums), so every checksum in the system agrees
// on one algorithm.
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// CRC32CUpdate extends an existing CRC32C with more data, for checksums
// computed over discontiguous spans (header ‖ payload).
func CRC32CUpdate(crc uint32, data []byte) uint32 { return crc32.Update(crc, castagnoli, data) }

// SealFrame appends the CRC32C trailer to the frame occupying dst[start:]
// (one complete frame as produced by AppendRequest/AppendResponseV) and
// returns the extended slice.
func SealFrame(dst []byte, start int) []byte {
	return appendU32(dst, crc32.Checksum(dst[start:], castagnoli))
}

// ReadTrailer reads and verifies the CRC32C trailer that follows an n-byte
// body obtained via ReadHeader+ReadBody. The length prefix is reconstructed
// from n, so the server's two-deadline header/body read split needs no
// change to be checksummed.
//
//dytis:blocks
func ReadTrailer(r io.Reader, n int, body []byte) error {
	var tr [TrailerLen]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	want := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, body)
	if got := binary.BigEndian.Uint32(tr[:]); got != want {
		return fmt.Errorf("%w: trailer %08x, computed %08x over %d-byte body", ErrChecksum, got, want, n)
	}
	return nil
}

// ReadFrameCRC reads one sealed frame from r into buf (grown as needed),
// verifying its trailer, and returns the body slice, which aliases buf. It
// is ReadHeader, ReadBody, ReadTrailer.
//
//dytis:blocks
func ReadFrameCRC(r io.Reader, buf []byte) ([]byte, []byte, error) {
	n, err := ReadHeader(r)
	if err != nil {
		return nil, buf, err
	}
	body, buf, err := ReadBody(r, n, buf)
	if err != nil {
		return nil, buf, err
	}
	if err := ReadTrailer(r, n, body); err != nil {
		return nil, buf, err
	}
	return body, buf, nil
}
