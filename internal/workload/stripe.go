package workload

// Stripe partitions an op stream round-robin into n substreams for
// multi-client replay: client i executes ops[i], ops[i+n], ops[i+2n], …
// in order. Round-robin keeps every client's substream representative of
// the whole mix (a contiguous split would hand one client all the early
// inserts of an insert-bounded workload) and preserves each op's relative
// order within its stripe. Concurrent replay of the stripes interleaves
// nondeterministically — that is the point of network-mode benchmarking —
// so correctness of a striped replay is judged against a quiescent oracle,
// not op-by-op.
//
// The returned slices alias freshly allocated arrays, not ops.
func Stripe(ops []Op, n int) [][]Op {
	if n < 1 {
		n = 1
	}
	out := make([][]Op, n)
	per := len(ops) / n
	for i := range out {
		out[i] = make([]Op, 0, per+1)
	}
	for i, op := range ops {
		out[i%n] = append(out[i%n], op)
	}
	return out
}
