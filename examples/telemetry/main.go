// Telemetry: a time-series ingestion scenario — the classic dynamic dataset
// of the paper's motivation (§2.1). Keys are (timestamp << 20 | sensorID),
// so the arriving key distribution drifts continuously (high KDD) the way
// the TX taxi dataset does, and queries are time-window scans, the operation
// hash indexes cannot serve.
//
// A B+-tree handles this too, but DyTIS serves the same scans while keeping
// hash-like point-op cost; this example shows the scan API doing real work:
// per-sensor window aggregation over the most recent data.
package main

import (
	"fmt"
	"math/rand"

	"dytis"
)

const (
	sensorBits = 20
	sensors    = 500
)

func key(ts uint64, sensor uint64) uint64 { return ts<<sensorBits | sensor }

func main() {
	// Attach an observer so the run reports per-operation latency
	// distributions and the structure events behind them — the live view a
	// production ingester would scrape over ob.Handler().
	ob := dytis.NewObserver()
	idx := dytis.New(dytis.WithObserver(ob))
	rng := rand.New(rand.NewSource(1))

	// Ingest 2M readings across a simulated day: demand varies by hour, so
	// both density over time and the arriving distribution drift.
	fmt.Println("ingesting 2,000,000 sensor readings...")
	ts := uint64(0)
	for i := 0; i < 2_000_000; i++ {
		// Busy hours produce dense timestamps, quiet hours sparse ones.
		hour := (ts >> 12) % 24
		step := uint64(1)
		if hour < 6 { // night: sparse
			step = 1 + uint64(rng.Intn(16))
		}
		ts += step
		sensor := uint64(rng.Intn(sensors))
		reading := uint64(rng.Intn(1000))
		idx.Insert(key(ts, sensor), reading)
	}
	fmt.Printf("live keys: %d\n", idx.Len())

	// Query 1: the latest 10 readings overall (scan from the tail).
	fmt.Println("\nlatest window:")
	tail := idx.Scan(key(ts-4096, 0), 10, nil)
	for _, p := range tail {
		fmt.Printf("  t=%-10d sensor=%-4d value=%d\n",
			p.Key>>sensorBits, p.Key&(1<<sensorBits-1), p.Value)
	}

	// Query 2: windowed aggregation — average reading per time window.
	fmt.Println("\nper-window averages (8 windows):")
	win := ts / 8
	for w := uint64(0); w < 8; w++ {
		var sum, n uint64
		idx.Range(key(w*win, 0), key((w+1)*win, 0)-1, func(k, v uint64) bool {
			sum += v
			n++
			return true
		})
		if n > 0 {
			fmt.Printf("  window %d: %7d readings, avg=%d\n", w, n, sum/n)
		}
	}

	// Query 3: retention — drop the oldest quarter of the data.
	cutoff := key(ts/4, 0)
	deleted := 0
	var victims []uint64
	idx.Range(0, cutoff, func(k, v uint64) bool {
		victims = append(victims, k)
		return true
	})
	for _, k := range victims {
		if idx.Delete(k) {
			deleted++
		}
	}
	fmt.Printf("\nretention: deleted %d old readings, %d remain\n", deleted, idx.Len())

	st := idx.Stats()
	fmt.Printf("index adapted with %d remaps, %d expansions, %d splits (dir entries: %d)\n",
		st.Remaps, st.Expansions, st.Splits, st.DirEntries)

	// The observer saw every operation and maintenance event.
	fmt.Printf("insert latency: %v\n", ob.OpHist(dytis.OpInsert))
	fmt.Printf("scan latency:   %v\n", ob.OpHist(dytis.OpScan))
	fmt.Printf("time in remaps: %v across %d events\n",
		ob.EventDuration(dytis.EvRemap), ob.EventCount(dytis.EvRemap))
}
