package core

import (
	"dytis/internal/kv"
)

// DyTIS is the Dynamic dataset Targeted Index Structure: an ordered index
// over uint64 keys that supports search, insert (upsert), delete, and range
// scans, with no bulk-load/training phase. See the package comment for the
// design; options follow §4.1 of the paper.
//
// With Options.Concurrent, all operations are safe for concurrent use via
// the two-level locking scheme of §3.4; otherwise the index is the paper's
// single-threaded no-lock variant.
type DyTIS struct {
	opts       Options
	suffixBits uint8
	ehs        []*eh
}

// New creates an empty DyTIS index.
func New(opts Options) *DyTIS {
	opts = opts.withDefaults()
	r := uint(opts.FirstLevelBits)
	d := &DyTIS{
		opts:       opts,
		suffixBits: uint8(64 - r),
		ehs:        make([]*eh, 1<<r),
	}
	for i := range d.ehs {
		d.ehs[i] = newEH(uint64(i)<<d.suffixBits, d.suffixBits, &d.opts)
	}
	return d
}

// NewDefault creates a DyTIS index with the paper's default parameters
// (single-threaded).
func NewDefault() *DyTIS { return New(Options{}) }

func (d *DyTIS) ehOf(k uint64) *eh { return d.ehs[k>>d.suffixBits] }

// Insert stores or updates the value for key.
func (d *DyTIS) Insert(key, value uint64) { d.ehOf(key).insert(key, value) }

// Get returns the value for key and whether it exists.
func (d *DyTIS) Get(key uint64) (uint64, bool) { return d.ehOf(key).get(key) }

// Delete removes key, reporting whether it was present.
func (d *DyTIS) Delete(key uint64) bool { return d.ehOf(key).delete(key) }

// Len returns the number of live keys.
func (d *DyTIS) Len() int {
	var n int64
	for _, e := range d.ehs {
		n += e.total.Load()
	}
	return int(n)
}

// Scan appends up to max pairs with key >= start, in ascending key order, to
// dst and returns the extended slice. It walks segment sibling chains within
// an EH and advances across first-level EH tables as ranges are exhausted.
// Under concurrency, the scan is not a point-in-time snapshot: each segment
// is read atomically (under its lock), but concurrent structural changes may
// hide keys inserted during the scan.
func (d *DyTIS) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	if max <= 0 {
		return dst
	}
	for i := int(start >> d.suffixBits); i < len(d.ehs); i++ {
		before := len(dst)
		dst = d.ehs[i].scan(start, max, dst)
		max -= len(dst) - before
		if max <= 0 {
			break
		}
	}
	return dst
}

// Range calls fn for every pair with key in [start, end], in ascending
// order, until fn returns false. It is a convenience wrapper over Scan used
// by the examples.
func (d *DyTIS) Range(start, end uint64, fn func(key, value uint64) bool) {
	const chunk = 256
	buf := make([]kv.KV, 0, chunk)
	for {
		buf = d.Scan(start, chunk, buf[:0])
		if len(buf) == 0 {
			return
		}
		for _, p := range buf {
			if p.Key > end {
				return
			}
			if !fn(p.Key, p.Value) {
				return
			}
		}
		last := buf[len(buf)-1].Key
		if last == ^uint64(0) {
			return
		}
		start = last + 1
	}
}

// Stats aggregates the maintenance-operation counters of every EH table;
// Durations cover the same operations and feed the §4.3 insertion-breakdown
// experiment.
type Stats struct {
	Splits, Remaps, Expansions, Doublings, RemapFailures int64
	SplitNS, RemapNS, ExpandNS, DoubleNS                 int64
	Segments, Buckets                                    int
	DirEntries                                           int
	AdaptiveEHs                                          int // EHs running with the raised Limit_seg
}

// Stats snapshots the maintenance counters. It is safe to call concurrently
// with operations, but the snapshot is not atomic across EHs.
func (d *DyTIS) Stats() Stats {
	var st Stats
	for _, e := range d.ehs {
		st.Splits += e.stats.splits.Load()
		st.Remaps += e.stats.remaps.Load()
		st.Expansions += e.stats.expansions.Load()
		st.Doublings += e.stats.doublings.Load()
		st.RemapFailures += e.stats.remapFails.Load()
		st.SplitNS += e.stats.splitNS.Load()
		st.RemapNS += e.stats.remapNS.Load()
		st.ExpandNS += e.stats.expandNS.Load()
		st.DoubleNS += e.stats.doubleNS.Load()
		if int(e.limitMult.Load()) != d.opts.SegLimitMult {
			st.AdaptiveEHs++
		}
		if e.conc {
			e.mu.RLock()
		}
		st.DirEntries += len(e.dir)
		var prev *segment
		for _, s := range e.dir {
			if s != prev {
				st.Segments++
				st.Buckets += s.nb
				prev = s
			}
		}
		if e.conc {
			e.mu.RUnlock()
		}
	}
	return st
}

// MemoryFootprint estimates the index's heap usage in bytes: directory
// pointers plus per-segment key/value/occupancy arrays and metadata. It is
// used by the §4.3 memory-usage comparison.
func (d *DyTIS) MemoryFootprint() int64 {
	var b int64
	for _, e := range d.ehs {
		if e.conc {
			e.mu.RLock()
		}
		b += int64(len(e.dir)) * 8
		var prev *segment
		for _, s := range e.dir {
			if s != prev {
				b += int64(s.nb*s.bcap)*16 + int64(s.nb)*2 + int64(len(s.cnt))*8 + 96
				prev = s
			}
		}
		if e.conc {
			e.mu.RUnlock()
		}
	}
	return b
}

// checkInvariants validates every segment; used by tests.
func (d *DyTIS) checkInvariants() error {
	for _, e := range d.ehs {
		var prev *segment
		for _, s := range e.dir {
			if s == prev {
				continue
			}
			prev = s
			if err := s.checkInvariants(); err != nil {
				return err
			}
		}
	}
	return nil
}
