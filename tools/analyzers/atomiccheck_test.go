package analyzers

import "testing"

func TestAtomicCheck(t *testing.T) {
	runAnalyzerTest(t, AtomicCheck, "b")
}
