// Package metricdup re-registers a series its dependency already exports:
// scrape output would carry the name twice, so metriccheck flags it.
package metricdup

import (
	"io"

	"metricdupdep"
)

// WritePrometheus registers a series metricdupdep also registers.
//
//dytis:series dytis_dup_requests_total
func WritePrometheus(w io.Writer) {
	io.WriteString(w, "dytis_dup_requests_total 1\n") // want `series dytis_dup_requests_total is registered by more than one package: metricdup, metricdupdep`
	metricdupdep.WritePrometheus(w)
}
