package workload

import (
	"math"
	"testing"
)

func seqKeys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) * 10
	}
	return out
}

func TestLoadPlanInsertsEverything(t *testing.T) {
	keys := seqKeys(1000)
	p := Build(Config{Kind: Load, Keys: keys})
	if p.PreloadCount != 0 {
		t.Fatalf("preload=%d", p.PreloadCount)
	}
	if len(p.Ops) != 1000 {
		t.Fatalf("ops=%d", len(p.Ops))
	}
	for i, op := range p.Ops {
		if op.Type != OpInsert || op.Key != keys[i] {
			t.Fatalf("op[%d]=%+v", i, op)
		}
	}
}

func TestMixProportions(t *testing.T) {
	keys := seqKeys(20000)
	for _, k := range []Kind{A, B, C, DPrime, E, F} {
		k := k
		t.Run(string(k), func(t *testing.T) {
			p := Build(Config{Kind: k, Keys: keys, Ops: 20000, Seed: 1})
			counts := map[OpType]int{}
			for _, op := range p.Ops {
				counts[op.Type]++
			}
			mix := MixFor(k)
			checks := []struct {
				typ  OpType
				frac float64
			}{
				{OpRead, mix.Read}, {OpUpdate, mix.Update},
				{OpInsert, mix.Insert}, {OpScan, mix.Scan}, {OpRMW, mix.RMW},
			}
			for _, c := range checks {
				got := float64(counts[c.typ]) / float64(len(p.Ops))
				if math.Abs(got-c.frac) > 0.02 {
					t.Fatalf("%v fraction %.3f want %.3f", c.typ, got, c.frac)
				}
			}
		})
	}
}

func TestPreloadFractions(t *testing.T) {
	keys := seqKeys(1000)
	if p := Build(Config{Kind: C, Keys: keys, Ops: 10}); p.PreloadCount != 1000 {
		t.Fatalf("C preload=%d", p.PreloadCount)
	}
	if p := Build(Config{Kind: E, Keys: keys, Ops: 10}); p.PreloadCount != 800 {
		t.Fatalf("E preload=%d", p.PreloadCount)
	}
}

func TestInsertsUseUnloadedKeysInOrder(t *testing.T) {
	keys := seqKeys(1000)
	p := Build(Config{Kind: DPrime, Keys: keys, Ops: 4000, Seed: 2})
	next := 800
	for _, op := range p.Ops {
		if op.Type == OpInsert {
			if op.Key != keys[next] {
				t.Fatalf("insert key %d want %d", op.Key, keys[next])
			}
			next++
		}
	}
	if next == 800 {
		t.Fatal("no inserts generated")
	}
	if next > 1000 {
		t.Fatal("inserted beyond the dataset")
	}
}

func TestInsertBudgetExhaustionFallsBackToReads(t *testing.T) {
	keys := seqKeys(100)
	// 5% of 100000 ops is far more than the 20 unloaded keys.
	p := Build(Config{Kind: DPrime, Keys: keys, Ops: 100000, Seed: 3})
	inserts := 0
	for _, op := range p.Ops {
		if op.Type == OpInsert {
			inserts++
		}
	}
	if inserts != 20 {
		t.Fatalf("inserts=%d want exactly the unloaded 20", inserts)
	}
}

func TestReadsComeFromPreloadedPopulation(t *testing.T) {
	keys := seqKeys(1000)
	p := Build(Config{Kind: E, Keys: keys, Ops: 5000, Seed: 4})
	loaded := map[uint64]bool{}
	for _, k := range keys[:p.PreloadCount] {
		loaded[k] = true
	}
	for _, op := range p.Ops {
		if op.Type == OpScan && !loaded[op.Key] {
			t.Fatalf("scan start %d not from preloaded set", op.Key)
		}
	}
}

func TestZipfSkewsTowardFewKeys(t *testing.T) {
	z := NewZipf(10000, 1, true)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Top item should be drawn far more often than uniform (20 each).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100*draws/10000 {
		t.Fatalf("top item drawn %d times; zipf not skewed", max)
	}
	// All draws in range.
	for item := range counts {
		if item >= 10000 {
			t.Fatalf("out-of-range item %d", item)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(1000, 9, true), NewZipf(1000, 9, true)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestUniformChoice(t *testing.T) {
	keys := seqKeys(10000)
	p := Build(Config{Kind: C, Keys: keys, Ops: 50000, Seed: 5, UniformChoice: true})
	counts := map[uint64]int{}
	for _, op := range p.Ops {
		counts[op.Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 40 { // uniform expectation is 5 per key
		t.Fatalf("uniform choice too skewed: max=%d", max)
	}
}
