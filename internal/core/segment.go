package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// segment is the unit of remapping: it covers a contiguous key range of
// width 2^rangeBits starting at base, and owns nb buckets of bcap key/value
// pairs each. A piecewise-linear remapping function — 2^pbits equal-width
// sub-ranges, sub-range j owning cnt[j] buckets starting at start[j] — maps a
// key's offset in the range to a bucket index. The function is the segment's
// scaled approximate CDF: it is monotone and continuous, so iterating buckets
// in index order yields keys in sorted order.
//
// The segment object's identity is stable for the lifetime of its key range:
// remapping and expansion swap the arrays inside the object (under the
// segment lock), while splits create new segment objects (under the EH lock),
// mirroring §3.4 of the paper.
type segment struct {
	mu   sync.RWMutex
	next atomic.Pointer[segment] // sibling pointer for scans

	// seq is the seqlock version for optimistic readers: wlock/wunlock keep
	// it odd exactly while a writer holds mu (Concurrent mode), and split
	// retirement leaves it permanently odd (both modes, so "retired ⟺ odd"
	// is mode-independent). Single-threaded operation never takes locks and
	// never bumps it, keeping that mode zero-overhead.
	seq atomic.Uint64
	// pub is the last adopted bucket layout, republished by adoptLayout (and
	// construction) so an optimistic reader obtains mutually-consistent
	// array headers from a single load. In-place mutators write through the
	// same backing arrays, so a published layout tracks the live contents;
	// only a wholesale array swap (adoptLayout) makes it stale, and the
	// seqlock version rejects any probe that raced one.
	pub atomic.Pointer[layout]

	ld        uint8  // local depth
	rangeBits uint8  // log2 of covered key-range width
	base      uint64 // first key covered (full-key space, aligned)

	pbits uint8    // guarded-by: mu; log2 of the number of remapping sub-ranges
	cnt   []uint32 // guarded-by: mu; buckets owned by each sub-range
	start []uint32 // guarded-by: mu; prefix sums; len(cnt)+1, start[len(cnt)] == nb

	nb       int      // guarded-by: mu; total buckets
	bcap     int      // entries per bucket (immutable)
	expanded bool     // guarded-by: mu; whether this segment has undergone an expansion
	keys     []uint64 // guarded-by: mu
	vals     []uint64 // guarded-by: mu
	sz       []uint16 // guarded-by: mu; per-bucket occupancy
	total    int      // guarded-by: mu

	// fk caches each bucket's first key; empty buckets carry the first key
	// of the nearest non-empty bucket to their RIGHT (fkSentinel past the
	// last). fk is therefore globally non-decreasing, which turns the
	// which-bucket-holds-k question into a binary search instead of a walk
	// over (possibly long) spill runs.
	fk []uint64 // guarded-by: mu
}

const fkSentinel = ^uint64(0)

// layout is an immutable snapshot of a segment's swappable geometry: the
// remapping function and the bucket arrays, captured together so a lock-free
// probe indexes mutually-consistent lengths (keys/vals are nb*bcap long, sz
// and fk are nb long, start is len(cnt)+1) no matter how stale the snapshot
// is. Element values may lag behind the live segment; the seqlock version
// decides whether a probe's view was consistent.
type layout struct {
	pbits uint8
	cnt   []uint32
	start []uint32
	nb    int
	keys  []uint64
	vals  []uint64
	sz    []uint16
	fk    []uint64
}

// publish snapshots the current geometry for optimistic readers. Every site
// that swaps the arrays (adoptLayout, construction) must republish before
// releasing the write lock.
//
//dytis:locked s.mu w
func (s *segment) publish() {
	s.pub.Store(&layout{
		pbits: s.pbits, cnt: s.cnt, start: s.start, nb: s.nb,
		keys: s.keys, vals: s.vals, sz: s.sz, fk: s.fk,
	})
}

// wlock acquires the write lock and makes the seqlock version odd, telling
// optimistic readers that concurrently-probed state may be inconsistent.
// Writers in Concurrent mode must pair it with wunlock instead of touching
// mu directly; single-threaded mode takes no locks at all.
//
//dytis:locks s.mu w
func (s *segment) wlock() {
	s.mu.Lock()
	s.seq.Add(1)
}

// wunlock makes the seqlock version even again and releases the write lock.
//
//dytis:locked s.mu w
//dytis:unlocks s.mu
func (s *segment) wunlock() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// retired reports whether the segment has been replaced by a split. The
// caller must hold mu (either mode): no writer can then be mid-critical-
// section, so an odd version can only mean the permanent retirement bump.
//
//dytis:locked s.mu r
func (s *segment) retired() bool { return s.seq.Load()&1 == 1 }

// newSegment allocates a segment with a uniform (identity-CDF) remapping
// function: every sub-range owns an equal share of the buckets.
func newSegment(ld, rangeBits uint8, base uint64, nb, bcap int, pbits uint8) *segment {
	if nb < 1 {
		nb = 1
	}
	if uint8(bits.Len(uint(nb))) <= pbits { // need 2^pbits <= nb for a sensible start
		pbits = uint8(bits.Len(uint(nb)) - 1)
	}
	if pbits > rangeBits {
		pbits = rangeBits
	}
	nsub := 1 << pbits
	cnt := make([]uint32, nsub)
	evenSplit(cnt, nb)
	s := &segment{
		ld: ld, rangeBits: rangeBits, base: base,
		pbits: pbits, cnt: cnt,
		nb: nb, bcap: bcap,
		keys: make([]uint64, nb*bcap),
		vals: make([]uint64, nb*bcap),
		sz:   make([]uint16, nb),
		fk:   make([]uint64, nb),
	}
	for j := range s.fk {
		s.fk[j] = fkSentinel
	}
	s.start = prefixSums(cnt)
	s.publish()
	return s
}

// evenSplit distributes total across dst as evenly as possible.
func evenSplit(dst []uint32, total int) {
	n := len(dst)
	q, r := total/n, total%n
	for i := range dst {
		dst[i] = uint32(q)
		if i < r {
			dst[i]++
		}
	}
}

func prefixSums(cnt []uint32) []uint32 {
	out := make([]uint32, len(cnt)+1)
	for i, c := range cnt {
		out[i+1] = out[i] + c
	}
	return out
}

// width returns the covered key-range width. rangeBits can be up to 55
// (64 - R - 0), so the width always fits in a uint64.
func (s *segment) width() uint64 { return 1 << s.rangeBits }

// predictWith evaluates a remapping function described by (pbits, cnt,
// start) over nb buckets for the key offset r in [0, 2^rangeBits).
func predictWith(r uint64, rangeBits, pbits uint8, cnt, start []uint32, nb int) int {
	shift := rangeBits - pbits
	j := int(r >> shift)
	within := r & (1<<shift - 1)
	c := uint64(cnt[j])
	// floor(within * c / 2^shift), exact via 128-bit intermediate.
	hi, lo := bits.Mul64(within, c)
	var q uint64
	if hi == 0 {
		q = lo >> shift
	} else {
		q = hi<<(64-shift) | lo>>shift
	}
	bi := int(start[j]) + int(q)
	if bi >= nb {
		bi = nb - 1
	}
	return bi
}

// predict returns the bucket index the remapping function assigns to key k.
//
//dytis:locked s.mu r
func (s *segment) predict(k uint64) int {
	return predictWith(k-s.base, s.rangeBits, s.pbits, s.cnt, s.start, s.nb)
}

// subRangeOf returns the sub-range index containing key k.
//
//dytis:locked s.mu r
func (s *segment) subRangeOf(k uint64) int {
	return int((k - s.base) >> (s.rangeBits - s.pbits))
}

//dytis:locked s.mu r
func (s *segment) bucketKeys(bi int) []uint64 {
	off := bi * s.bcap
	return s.keys[off : off+int(s.sz[bi])]
}

//dytis:locked s.mu r
func (s *segment) firstKey(bi int) uint64 { return s.keys[bi*s.bcap] }

//dytis:locked s.mu r
func (s *segment) nextNonEmpty(bi int) int {
	for j := bi + 1; j < s.nb; j++ {
		if s.sz[j] > 0 {
			return j
		}
	}
	return -1
}

//dytis:locked s.mu r
func (s *segment) firstNonEmpty() int {
	for j := 0; j < s.nb; j++ {
		if s.sz[j] > 0 {
			return j
		}
	}
	return -1
}

// util returns the segment's utilization U_s.
//
//dytis:locked s.mu r
func (s *segment) util() float64 {
	return float64(s.total) / float64(s.nb*s.bcap)
}

// findSlot locates key k. It returns the bucket and in-bucket position where
// k lives (exists=true) or should be inserted (exists=false). If the key is
// absent and every admissible bucket is full, full=true and bi names the
// overflowing bucket (pos is -1); the caller must run the Algorithm-1
// maintenance path and retry.
//
// The search is seeded by the remapping function's prediction and then
// corrected by walking over the (globally sorted) bucket sequence, the
// last-mile search step shared with learned indexes.
//
//dytis:locked s.mu r
func (s *segment) findSlot(k uint64) (bi, pos int, exists, full bool) {
	p := s.predict(k)
	if s.total == 0 {
		return p, 0, false, false
	}
	c := s.candidate(k, p)
	if c < 0 {
		// k precedes every key in the segment.
		f := s.firstNonEmpty()
		switch {
		case p < f:
			return p, 0, false, false // empty bucket at the prediction
		case int(s.sz[f]) < s.bcap:
			return f, 0, false, false // prepend into the first bucket
		case f > 0:
			return f - 1, 0, false, false // empty bucket just before it
		default:
			return f, -1, false, true
		}
	}
	ks := s.bucketKeys(c)
	i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
	if i < len(ks) && ks[i] == k {
		return c, i, true, false
	}
	if i < len(ks) {
		// k belongs strictly inside bucket c.
		return c, i, false, len(ks) == s.bcap
	}
	// k falls in the gap after bucket c. Any bucket in [c, next) preserves
	// order; prefer the predicted one, then space in c, then an adjacent
	// empty bucket, then the head of the next bucket.
	n := s.nextNonEmpty(c)
	hi := s.nb - 1
	if n >= 0 {
		hi = n - 1
	}
	if e := clampInt(p, c, hi); e > c {
		return e, 0, false, false
	}
	switch {
	case len(ks) < s.bcap:
		return c, len(ks), false, false
	case c+1 <= hi:
		return c + 1, 0, false, false
	case n >= 0 && int(s.sz[n]) < s.bcap:
		return n, 0, false, false
	default:
		return c, -1, false, true
	}
}

// candidate returns the last non-empty bucket whose first key is <= k (-1 if
// none), by exponential search over the non-decreasing fk cache seeded at
// the predicted bucket p.
//
//dytis:locked s.mu r
func (s *segment) candidate(k uint64, p int) int {
	return candidateIn(s.fk, s.sz, s.nb, k, p)
}

// candidateIn is candidate over explicit arrays, shared between the locked
// probe and the lock-free layout probe (lookupIn). fk and sz must have at
// least nb entries and p must be in [0, nb).
func candidateIn(fk []uint64, sz []uint16, nb int, k uint64, p int) int {
	// Find the first bucket j with fk[j] > k, galloping out from p.
	var lo, hi int
	if fk[p] > k {
		step := 1
		hi = p
		lo = p
		for lo > 0 && fk[lo] > k {
			hi = lo
			lo -= step
			step <<= 1
		}
		if lo < 0 {
			lo = 0
		}
		if fk[lo] > k && lo == 0 {
			hi = 0
		}
	} else {
		step := 1
		lo = p
		hi = p + 1
		for hi < nb && fk[hi] <= k {
			lo = hi
			hi += step
			step <<= 1
		}
		if hi > nb {
			hi = nb
		}
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if fk[mid] > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	c := hi - 1
	// c can only be empty when k equals the sentinel (trailing empties);
	// walk left to the real bucket.
	for c >= 0 && sz[c] == 0 {
		c--
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// get returns the value for k.
//
//dytis:locked s.mu r
func (s *segment) get(k uint64) (uint64, bool) {
	bi, pos, exists, _ := s.findSlot(k)
	if !exists {
		return 0, false
	}
	return s.vals[bi*s.bcap+pos], true
}

// lookupIn runs the predict→candidate→binary-search point probe against one
// published layout without holding the segment lock. Buckets are globally
// sorted and fk is right-filled, so a key can only live in the candidate
// bucket; no gap handling is needed. Any interleaving with writers still
// yields bounded indexes — headers within one layout are mutually consistent
// and the racy occupancy read is clamped to bcap — so the probe cannot
// fault; the caller validates the seqlock version afterward and discards the
// result on conflict.
//
//dytis:seqlocked
func (s *segment) lookupIn(l *layout, k uint64) (uint64, bool) {
	p := predictWith(k-s.base, s.rangeBits, l.pbits, l.cnt, l.start, l.nb)
	c := candidateIn(l.fk, l.sz, l.nb, k, p)
	if c < 0 {
		return 0, false
	}
	n := int(l.sz[c])
	if n > s.bcap {
		n = s.bcap
	}
	off := c * s.bcap
	ks := l.keys[off : off+n]
	i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
	if i < len(ks) && ks[i] == k {
		return l.vals[off+i], true
	}
	return 0, false
}

// tryGet is one optimistic point-lookup attempt: version check, lock-free
// probe, version re-check. valid=false means the probe raced a writer or the
// segment is retired; the caller retries through a fresher directory
// snapshot or falls back to the locked path. Under the race detector the
// lock-free element reads would be reported (the seqlock protocol is
// formally racy by design), so race builds validate the snapshot/retirement
// half of the protocol under the segment read lock instead; see race_off.go.
//
//dytis:seqlocked
func (s *segment) tryGet(k uint64) (v uint64, ok, valid bool) {
	if raceEnabled {
		s.mu.RLock()
		if s.retired() {
			s.mu.RUnlock()
			return 0, false, false
		}
		v, ok = s.get(k)
		s.mu.RUnlock()
		return v, ok, true
	}
	v1 := s.seq.Load()
	if v1&1 != 0 {
		return 0, false, false // writer active, or segment retired
	}
	l := s.pub.Load()
	v, ok = s.lookupIn(l, k)
	if s.seq.Load() != v1 {
		return 0, false, false // raced a writer; discard
	}
	return v, ok, true
}

// insertAt places (k,v) at bucket bi, position pos, shifting larger entries.
// The bucket must have room.
//
//dytis:locked s.mu w
func (s *segment) insertAt(bi, pos int, k, v uint64) {
	off := bi * s.bcap
	n := int(s.sz[bi])
	copy(s.keys[off+pos+1:off+n+1], s.keys[off+pos:off+n])
	copy(s.vals[off+pos+1:off+n+1], s.vals[off+pos:off+n])
	s.keys[off+pos] = k
	s.vals[off+pos] = v
	s.sz[bi]++
	s.total++
	if pos == 0 {
		s.refreshFK(bi, k)
	}
}

// refreshFK records bucket bi's new first key and propagates it left across
// the empty-bucket run that mirrors it.
//
//dytis:locked s.mu w
func (s *segment) refreshFK(bi int, first uint64) {
	s.fk[bi] = first
	for m := bi - 1; m >= 0 && s.sz[m] == 0; m-- {
		s.fk[m] = first
	}
}

// removeAt deletes the entry at bucket bi, position pos.
//
//dytis:locked s.mu w
func (s *segment) removeAt(bi, pos int) {
	off := bi * s.bcap
	n := int(s.sz[bi])
	copy(s.keys[off+pos:off+n-1], s.keys[off+pos+1:off+n])
	copy(s.vals[off+pos:off+n-1], s.vals[off+pos+1:off+n])
	s.sz[bi]--
	s.total--
	if pos == 0 {
		nf := uint64(fkSentinel)
		if s.sz[bi] > 0 {
			nf = s.keys[off]
		} else if bi+1 < s.nb {
			nf = s.fk[bi+1]
		}
		s.refreshFK(bi, nf)
	}
}

// makeRoom frees one slot in full bucket bi by cascading a boundary element
// into the nearest bucket with space, at most `limit` buckets away. Global
// sorted order is preserved: only run-edge elements move to the adjacent
// bucket. Used in the degenerate-cluster regime (directory at the depth
// guard) where rebuilding the segment for every few boundary inserts would
// be quadratic.
//
//dytis:locked s.mu w
func (s *segment) makeRoom(bi, limit int) bool {
	r, l := -1, -1
	for j := bi + 1; j < s.nb && j <= bi+limit; j++ {
		if int(s.sz[j]) < s.bcap {
			r = j
			break
		}
	}
	for j := bi - 1; j >= 0 && j >= bi-limit; j-- {
		if int(s.sz[j]) < s.bcap {
			l = j
			break
		}
	}
	switch {
	case r >= 0 && (l < 0 || r-bi <= bi-l):
		for j := r; j > bi; j-- {
			s.moveLastToFront(j-1, j)
		}
		return true
	case l >= 0:
		for j := l; j < bi; j++ {
			s.moveFirstToEnd(j+1, j)
		}
		return true
	}
	return false
}

// moveLastToFront moves bucket a's largest pair to the front of bucket b
// (a < b, b has room).
//
//dytis:locked s.mu w
func (s *segment) moveLastToFront(a, b int) {
	n := int(s.sz[a])
	off := a*s.bcap + n - 1
	k, v := s.keys[off], s.vals[off]
	s.sz[a]--
	s.total--
	if s.sz[a] == 0 {
		nf := uint64(fkSentinel)
		if a+1 < s.nb {
			nf = s.fk[a+1]
		}
		s.refreshFK(a, nf)
	}
	// insertAt refreshes fk[b] and re-propagates over a if it emptied.
	s.insertAt(b, 0, k, v)
}

// moveFirstToEnd moves bucket a's smallest pair to the end of bucket b
// (b < a, b has room).
//
//dytis:locked s.mu w
func (s *segment) moveFirstToEnd(a, b int) {
	k, v := s.keys[a*s.bcap], s.vals[a*s.bcap]
	s.removeAt(a, 0)
	s.insertAt(b, int(s.sz[b]), k, v)
}

// visit calls fn for each pair from (bi, pos) to the end of the segment, in
// ascending order, returning false if fn stopped the iteration.
//
//dytis:locked s.mu r
func (s *segment) visit(bi, pos int, fn func(k, v uint64) bool) bool {
	for ; bi < s.nb; bi, pos = bi+1, 0 {
		off := bi * s.bcap
		n := int(s.sz[bi])
		for ; pos < n; pos++ {
			if !fn(s.keys[off+pos], s.vals[off+pos]) {
				return false
			}
		}
	}
	return true
}

// appendAll appends the segment's pairs in sorted order.
//
//dytis:locked s.mu r
func (s *segment) appendAll(dstK, dstV []uint64) ([]uint64, []uint64) {
	for bi := 0; bi < s.nb; bi++ {
		off := bi * s.bcap
		n := int(s.sz[bi])
		dstK = append(dstK, s.keys[off:off+n]...)
		dstV = append(dstV, s.vals[off:off+n]...)
	}
	return dstK, dstV
}

// adoptLayout swaps in a new remapping function and bucket array, replacing
// the segment's contents with the given ascending pairs. It implements the
// "create new layout, copy each key using the new remapping functions"
// data movement of remapping, expansion, and shrinking. nb*bcap must be
// >= len(ks).
//
//dytis:locked s.mu w
func (s *segment) adoptLayout(pbits uint8, cnt []uint32, nb int, ks, vs []uint64) {
	start := prefixSums(cnt)
	keys := make([]uint64, nb*s.bcap)
	vals := make([]uint64, nb*s.bcap)
	sz := make([]uint16, nb)
	placeSorted(keys, vals, sz, s.bcap, s.rangeBits, s.base, pbits, cnt, start, nb, ks, vs)
	s.pbits, s.cnt, s.start = pbits, cnt, start
	s.nb = nb
	s.keys, s.vals, s.sz = keys, vals, sz
	s.total = len(ks)
	// Rebuild the first-key cache right-to-left.
	s.fk = make([]uint64, nb)
	fill := uint64(fkSentinel)
	for j := nb - 1; j >= 0; j-- {
		if sz[j] > 0 {
			fill = keys[j*s.bcap]
		}
		s.fk[j] = fill
	}
	s.publish()
}

// placeSorted distributes ascending pairs into buckets following the
// remapping function, spilling right past full buckets.
//
// Two corrections keep placement robust when the piecewise model cannot
// resolve the distribution (e.g. a key cluster far narrower than a
// sub-range):
//
//   - an even-spread floor (bucket >= i/fill) prevents dense packing at the
//     left edge, so future inserts below the smallest keys still find room;
//   - a tail clamp (bucket <= nb - ceil(remaining/bcap)) guarantees the
//     suffix of untouched buckets can absorb the rest even when predictions
//     concentrate at the right edge.
//
// Keys can therefore sit on either side of their prediction; findSlot
// searches both directions.
func placeSorted(keys, vals []uint64, sz []uint16, bcap int, rangeBits uint8, base uint64,
	pbits uint8, cnt, start []uint32, nb int, ks, vs []uint64) {
	if len(ks) == 0 {
		return
	}
	fill := (len(ks) + nb - 1) / nb // even per-bucket load, >= 1
	// Spill threshold: leave ~25% headroom per bucket when capacity allows,
	// so keys that later land strictly inside a rebuilt bucket still find
	// room instead of immediately re-triggering maintenance.
	thresh := bcap * 3 / 4
	if thresh < fill {
		thresh = fill
	}
	if thresh < 1 {
		thresh = 1
	}
	w := 0
	for i, k := range ks {
		t := predictWith(k-base, rangeBits, pbits, cnt, start, nb)
		if even := i / fill; even > t {
			t = even
		}
		if t > w {
			w = t
		}
		rem := len(ks) - i
		if maxW := nb - (rem+bcap-1)/bcap; w > maxW {
			w = maxW
		}
		// Soft spill: skip buckets at the headroom threshold while the
		// fully-untouched suffix alone can still absorb the rest.
		for int(sz[w]) >= thresh && (nb-1-w)*bcap >= rem {
			w++
		}
		// Hard spill: a bucket at physical capacity must be skipped.
		for int(sz[w]) == bcap {
			w++
		}
		off := w*bcap + int(sz[w])
		keys[off] = k
		vals[off] = vs[i]
		sz[w]++
	}
}

// subRangeKeyCounts histograms the segment's keys into 2^pbits equal
// sub-ranges of its key range.
//
//dytis:locked s.mu r
func (s *segment) subRangeKeyCounts(pbits uint8) []int {
	out := make([]int, 1<<pbits)
	shift := s.rangeBits - pbits
	for bi := 0; bi < s.nb; bi++ {
		for _, k := range s.bucketKeys(bi) {
			out[(k-s.base)>>shift]++
		}
	}
	return out
}

// countBelow returns how many keys are smaller than pivot.
//
//dytis:locked s.mu r
func (s *segment) countBelow(pivot uint64) int {
	n := 0
	for bi := 0; bi < s.nb; bi++ {
		ks := s.bucketKeys(bi)
		if len(ks) == 0 {
			continue
		}
		if ks[len(ks)-1] < pivot {
			n += len(ks)
			continue
		}
		n += sort.Search(len(ks), func(i int) bool { return ks[i] >= pivot })
		break
	}
	return n
}

// checkInvariants verifies structural invariants; used by tests.
//
//dytis:nolockcheck
func (s *segment) checkInvariants() error {
	if got := int(s.start[len(s.cnt)]); got != s.nb {
		return errf("cnt sums to %d, nb=%d", got, s.nb)
	}
	total := 0
	var prev uint64
	seen := false
	for bi := 0; bi < s.nb; bi++ {
		ks := s.bucketKeys(bi)
		total += len(ks)
		for _, k := range ks {
			if seen && k <= prev {
				return errf("keys not globally ascending at bucket %d", bi)
			}
			if k < s.base || k-s.base >= s.width() {
				return errf("key %#x outside segment range base=%#x bits=%d", k, s.base, s.rangeBits)
			}
			prev, seen = k, true
		}
	}
	if total != s.total {
		return errf("total=%d, counted %d", s.total, total)
	}
	// The first-key cache must be the right-fill of bucket first keys.
	fill := uint64(fkSentinel)
	for j := s.nb - 1; j >= 0; j-- {
		if s.sz[j] > 0 {
			fill = s.firstKey(j)
		}
		if s.fk[j] != fill {
			return errf("fk[%d]=%#x, want %#x", j, s.fk[j], fill)
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
