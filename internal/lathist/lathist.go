// Package lathist provides a fixed-memory, log-linear latency histogram used
// by the benchmark harness to report average and tail (p99, p99.99)
// latencies, the metrics Table 2 of the DyTIS paper reports.
//
// Values are recorded in nanoseconds. Buckets are organized as 64 powers of
// two, each subdivided into 32 linear sub-buckets, giving a worst-case
// quantile error of ~3% — more than enough resolution to reproduce the
// paper's latency tables.
package lathist

import (
	"fmt"
	"math/bits"
	"time"
)

const (
	subBits  = 5
	subCount = 1 << subBits // linear sub-buckets per power of two
	// Exponents run 5..63; plus the 32 exact unit buckets for v < 32.
	nBuckets = (64 - subBits + 1) * subCount
)

// Hist is a latency histogram. The zero value is ready to use.
// Hist is not safe for concurrent use; give each worker its own Hist and
// Merge them.
type Hist struct {
	counts [nBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
	min    uint64
}

func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= subBits
	sub := (v >> (uint(exp) - subBits)) & (subCount - 1)
	return (exp-subBits+1)*subCount + int(sub)
}

// lowerBound returns the smallest value mapping into bucket b.
func lowerBound(b int) uint64 {
	if b < subCount {
		return uint64(b)
	}
	exp := b/subCount + subBits - 1
	sub := uint64(b % subCount)
	return (1 << uint(exp)) | (sub << (uint(exp) - subBits))
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.total == 1 || v < h.min {
		h.min = v
	}
}

// RecordN adds n identical latency observations in one shot. It is the
// batched form of Record used when a caller times a whole batch and books
// the mean per-op latency for each of its n operations.
func (h *Hist) RecordN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	c := uint64(n)
	h.counts[bucketOf(v)] += c
	if h.total == 0 || v < h.min {
		h.min = v
	}
	h.total += c
	h.sum += v * c
	if v > h.max {
		h.max = v
	}
}

// Merge adds all observations of o into h.
func (h *Hist) Merge(o *Hist) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Mean returns the average latency, or 0 if empty.
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Max returns the largest recorded latency.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Min returns the smallest recorded latency.
func (h *Hist) Min() time.Duration { return time.Duration(h.min) }

// Quantile returns the latency at quantile q in [0,1]. It returns the lower
// bound of the bucket containing the q-th observation; for q>=1 it returns
// Max().
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			return time.Duration(lowerBound(b))
		}
	}
	return time.Duration(h.max)
}

// Sum returns the total of all recorded latencies in nanoseconds.
func (h *Hist) Sum() uint64 { return h.sum }

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// String summarizes the histogram in the paper's avg/p99/p99.99 format.
func (h *Hist) String() string {
	return fmt.Sprintf("avg=%v p99=%v p99.99=%v max=%v n=%d",
		h.Mean(), h.Quantile(0.99), h.Quantile(0.9999), h.Max(), h.Count())
}
