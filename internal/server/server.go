// Package server is the network serving subsystem: it exposes a DyTIS index
// over the length-prefixed binary protocol of internal/proto with request
// pipelining, per-connection read/write goroutines, batched opcodes,
// connection limits with accept-side backpressure, and graceful drain.
//
// Concurrency model, per connection:
//
//	read loop ──decode──► handle (index op) ──encode──► out chan ──► write loop
//
// The read loop decodes and executes requests back-to-back without waiting
// for the client to consume responses — that is what makes client-side
// pipelining effective — and hands each encoded response to the write loop
// over a bounded channel. The chain is self-throttling end to end: a client
// that stops reading stalls the write loop on TCP, which fills the out
// channel, which blocks the read loop, which fills the client's send window.
// No per-connection buffering grows beyond the channel's Pipeline frames.
//
// Because every index operation a connection issues runs on that
// connection's read-loop goroutine, the server is exactly the multi-client
// adversarial workload the Concurrent index was built for: N connections =
// N goroutines hammering Get/Insert/Delete/Scan (the optimistic read path
// included) with no additional synchronization in this package.
//
// Graceful drain (Shutdown): the listener closes first (no new
// connections), then every connection's read deadline is pulled to "now".
// Requests already buffered keep executing and their responses flush before
// the connection closes — a pipelining client receives an answer for
// everything the server read off the wire — and Shutdown returns when every
// connection has drained, or forcibly closes the stragglers when its
// context expires.
package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/kv"
)

// Index is the index surface the server serves; *core.DyTIS (and therefore
// the public dytis.Index) implements it. The index must be in Concurrent
// mode: every connection drives it from its own goroutine.
type Index interface {
	Get(key uint64) (uint64, bool)
	Insert(key, value uint64)
	Delete(key uint64) bool
	Scan(start uint64, max int, dst []kv.KV) []kv.KV
	GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool)
	InsertBatch(keys, vals []uint64)
	DeleteBatch(keys []uint64, found []bool) []bool
	Len() int
}

// Config configures a Server; Index is the only required field.
type Config struct {
	Index Index
	// MaxConns caps simultaneously served connections (default 256). At the
	// cap, further clients queue in the kernel accept backlog instead of
	// being accepted and starved — backpressure, not load shedding.
	MaxConns int
	// Pipeline is the per-connection bound on encoded responses queued
	// between the read and write loops (default 128).
	Pipeline int
	// Metrics, when non-nil, records server-side per-opcode latencies and
	// connection counters (see metrics.go).
	Metrics *Metrics
	// Logf, when non-nil, receives one line per abnormal connection end.
	Logf func(format string, args ...any)
}

// ErrServerClosed is returned by Serve after Shutdown, mirroring net/http.
var ErrServerClosed = errors.New("server: closed")

// Server serves one Index over one listener. Create with New, run with
// Serve, stop with Shutdown.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	closed chan struct{} // closed when Shutdown begins
	wg     sync.WaitGroup
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.Index == nil {
		panic("server: Config.Index is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 128
	}
	return &Server{
		cfg:    cfg,
		conns:  make(map[*conn]struct{}),
		closed: make(chan struct{}),
	}
}

// Serve accepts connections on ln until Shutdown (returning ErrServerClosed)
// or an unrecoverable accept error. The listener is closed on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()

	sem := make(chan struct{}, s.cfg.MaxConns)
	for {
		// Acquire a connection slot before accepting: at MaxConns the accept
		// loop itself blocks and new clients wait in the listen backlog.
		select {
		case sem <- struct{}{}:
		case <-s.closed:
			return ErrServerClosed
		}
		nc, err := ln.Accept()
		if err != nil {
			<-sem
			select {
			case <-s.closed:
				return ErrServerClosed
			default:
				return err
			}
		}
		c := &conn{srv: s, nc: nc}
		if !s.track(c) { // lost the race with Shutdown
			nc.Close()
			<-sem
			return ErrServerClosed
		}
		if m := s.cfg.Metrics; m != nil {
			m.connAccepted()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-sem }()
			c.serve()
			s.untrack(c)
			if m := s.cfg.Metrics; m != nil {
				m.connClosed()
			}
		}()
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown gracefully drains the server: it stops accepting, lets every
// connection finish the requests the server has already read (flushing their
// responses), and waits for all connections to end. If ctx expires first the
// remaining connections are closed forcibly and ctx.Err() is returned.
// Shutdown is idempotent; concurrent calls all wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if first {
		close(s.closed)
	}
	if ln != nil {
		ln.Close()
	}
	// Pull every reader's deadline to now: blocked reads fail immediately,
	// while requests already buffered decode and execute before the reader
	// next touches the socket.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// connSerial numbers connections for metric sharding.
var connSerial atomic.Uint64

// errClientGone matches the errors a closing or resetting peer produces,
// which are normal ends, not log-worthy failures.
func clientGone(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true // drain deadline
	}
	return errors.Is(err, net.ErrClosed)
}
