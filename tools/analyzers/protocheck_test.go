package analyzers

import "testing"

func TestProtoCheckClean(t *testing.T) {
	runAnalyzerTest(t, ProtoCheck, "protodef")
}

func TestProtoCheckViolations(t *testing.T) {
	runAnalyzerTest(t, ProtoCheck, "protobad")
}

func TestProtoCheckCrossPackage(t *testing.T) {
	runAnalyzerTest(t, ProtoCheck, "protouse")
}
