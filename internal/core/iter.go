package core

import "dytis/internal/kv"

// Min returns the smallest key/value pair, or ok=false when empty.
func (d *DyTIS) Min() (kv.KV, bool) { return d.Successor(0) }

// Max returns the largest key/value pair, or ok=false when empty.
func (d *DyTIS) Max() (kv.KV, bool) {
	for i := len(d.ehs) - 1; i >= 0; i-- {
		if p, ok := d.ehs[i].maxPair(); ok {
			return p, true
		}
	}
	return kv.KV{}, false
}

// maxPair returns the EH's largest pair by walking the directory from the
// top; directory entries for the same segment are contiguous, so stepping by
// the segment's span visits each segment once.
func (e *eh) maxPair() (kv.KV, bool) {
	if e.conc {
		e.mu.RLock()
	}
	for i := len(e.dir) - 1; i >= 0; {
		s := e.dir[i]
		if e.conc {
			s.mu.RLock()
		}
		p, ok := s.maxPair()
		if e.conc {
			s.mu.RUnlock()
		}
		if ok {
			if e.conc {
				e.mu.RUnlock()
			}
			return p, true
		}
		i -= 1 << (e.gd - s.ld) // skip the rest of this segment's run
	}
	if e.conc {
		e.mu.RUnlock()
	}
	return kv.KV{}, false
}

//dytis:locked s.mu r
func (s *segment) maxPair() (kv.KV, bool) {
	for bi := s.nb - 1; bi >= 0; bi-- {
		if n := int(s.sz[bi]); n > 0 {
			off := bi*s.bcap + n - 1
			return kv.KV{Key: s.keys[off], Value: s.vals[off]}, true
		}
	}
	return kv.KV{}, false
}

// Successor returns the smallest pair with key >= k.
func (d *DyTIS) Successor(k uint64) (kv.KV, bool) {
	var out kv.KV
	var found bool
	d.ScanFunc(k, func(key, value uint64) bool {
		out, found = kv.KV{Key: key, Value: value}, true
		return false
	})
	return out, found
}

// Cursor iterates pairs in ascending key order. It reads the index in small
// chunks, so under concurrency it observes each segment atomically but is
// not a point-in-time snapshot (same semantics as Scan).
type Cursor struct {
	d    *DyTIS
	buf  []kv.KV
	pos  int
	next uint64 // next start key
	done bool
}

// cursorChunk is the number of pairs fetched per refill.
const cursorChunk = 128

// NewCursor returns a cursor positioned at the first key >= start.
func (d *DyTIS) NewCursor(start uint64) *Cursor {
	return &Cursor{d: d, next: start}
}

// Next returns the next pair in order, or ok=false at the end.
func (c *Cursor) Next() (kv.KV, bool) {
	if c.pos >= len(c.buf) {
		if c.done {
			return kv.KV{}, false
		}
		c.refill()
		if len(c.buf) == 0 {
			c.done = true
			return kv.KV{}, false
		}
	}
	p := c.buf[c.pos]
	c.pos++
	return p, true
}

// refill repopulates the cursor's reusable buffer with the next chunk via
// ScanFunc, so each refill visits the buckets directly instead of
// round-tripping through Scan's []kv.KV machinery; the buffer is allocated
// once and reused for the cursor's lifetime.
func (c *Cursor) refill() {
	if c.buf == nil {
		c.buf = make([]kv.KV, 0, cursorChunk)
	}
	c.buf = c.buf[:0]
	c.pos = 0
	c.d.ScanFunc(c.next, func(k, v uint64) bool {
		c.buf = append(c.buf, kv.KV{Key: k, Value: v})
		return len(c.buf) < cursorChunk
	})
	if len(c.buf) == 0 {
		return
	}
	last := c.buf[len(c.buf)-1].Key
	if last == ^uint64(0) || len(c.buf) < cursorChunk {
		c.done = true
	} else {
		c.next = last + 1
	}
}

// Seek repositions the cursor at the first key >= k.
func (c *Cursor) Seek(k uint64) {
	c.buf = c.buf[:0]
	c.pos = 0
	c.next = k
	c.done = false
}
