// Package fsutil holds the one filesystem-durability helper shared by the
// snapshot and WAL paths, so the two cannot drift apart in how they treat
// filesystems that refuse directory fsync.
package fsutil

import (
	"errors"
	"os"
	"syscall"
)

// SyncDir fsyncs a directory so a preceding create, rename, or remove in it
// survives a crash. Filesystems that do not support fsync on directories
// report EINVAL or ENOTSUP; that is tolerated — the metadata operation is
// still atomic, just not yet durable, and there is nothing more we can do.
// (EINVAL must be matched as syscall.EINVAL: Errno.Is maps ENOTSUP to
// errors.ErrUnsupported but maps EINVAL to nothing, and os.ErrInvalid never
// matches it.) Any other failure is returned: callers on the durability
// path must treat it as a failed commit.
func SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
