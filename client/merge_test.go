package client

import (
	"errors"
	"testing"
)

// fakeStream is a scripted kvStream: it yields pairs in order, then ends
// either cleanly or with failAfter pairs delivered and err set.
type fakeStream struct {
	keys, vals []uint64
	failAfter  int // -1 = never fail
	err        error

	i        int
	key, val uint64
	serr     error
	closed   int
}

func newFakeStream(pairs ...uint64) *fakeStream {
	if len(pairs)%2 != 0 {
		panic("pairs must be key,val,key,val,...")
	}
	f := &fakeStream{failAfter: -1}
	for i := 0; i < len(pairs); i += 2 {
		f.keys = append(f.keys, pairs[i])
		f.vals = append(f.vals, pairs[i+1])
	}
	return f
}

func (f *fakeStream) Next() bool {
	if f.serr != nil {
		return false
	}
	if f.failAfter >= 0 && f.i >= f.failAfter {
		f.serr = f.err
		return false
	}
	if f.i >= len(f.keys) {
		return false
	}
	f.key, f.val = f.keys[f.i], f.vals[f.i]
	f.i++
	return true
}

func (f *fakeStream) Key() uint64   { return f.key }
func (f *fakeStream) Value() uint64 { return f.val }
func (f *fakeStream) Err() error    { return f.serr }
func (f *fakeStream) Close() error  { f.closed++; return nil }

// drain pulls the merge dry, returning the delivered pairs.
func drain(t *testing.T, m *MergeScanner) (keys, vals []uint64) {
	t.Helper()
	for m.Next() {
		keys = append(keys, m.Key())
		vals = append(vals, m.Value())
	}
	return keys, vals
}

func wantPairs(t *testing.T, keys, vals, wantK, wantV []uint64) {
	t.Helper()
	if len(keys) != len(wantK) {
		t.Fatalf("got %d pairs %v, want %d %v", len(keys), keys, len(wantK), wantK)
	}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("pair %d = (%d, %d), want (%d, %d)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
}

func TestMergeOrdersAcrossSources(t *testing.T) {
	a := newFakeStream(1, 10, 5, 50, 9, 90)
	b := newFakeStream(2, 20, 3, 30, 8, 80)
	c := newFakeStream(4, 40, 6, 60, 7, 70)
	m := newMergeScanner([]kvStream{a, b, c}, 0)
	keys, vals := drain(t, m)
	if err := m.Err(); err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	wantPairs(t, keys, vals,
		[]uint64{1, 2, 3, 4, 5, 6, 7, 8, 9},
		[]uint64{10, 20, 30, 40, 50, 60, 70, 80, 90})
	if got := m.Total(); got != 9 {
		t.Fatalf("Total() = %d, want 9", got)
	}
}

func TestMergeDuplicateKeysAcrossSources(t *testing.T) {
	// Shards own disjoint ranges in production, but the merge must still be
	// well-defined on overlap: equal keys emit once per source, source order.
	a := newFakeStream(1, 100, 5, 500)
	b := newFakeStream(1, 101, 5, 501, 6, 601)
	m := newMergeScanner([]kvStream{a, b}, 0)
	keys, vals := drain(t, m)
	if err := m.Err(); err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	wantPairs(t, keys, vals,
		[]uint64{1, 1, 5, 5, 6},
		[]uint64{100, 101, 500, 501, 601})
}

func TestMergeEmptySource(t *testing.T) {
	a := newFakeStream(2, 20, 4, 40)
	empty := newFakeStream()
	b := newFakeStream(1, 10, 3, 30)
	m := newMergeScanner([]kvStream{a, empty, b}, 0)
	keys, vals := drain(t, m)
	if err := m.Err(); err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	wantPairs(t, keys, vals, []uint64{1, 2, 3, 4}, []uint64{10, 20, 30, 40})
}

func TestMergeAllSourcesEmpty(t *testing.T) {
	m := newMergeScanner([]kvStream{newFakeStream(), newFakeStream()}, 0)
	if m.Next() {
		t.Fatal("Next() = true on all-empty merge")
	}
	if err := m.Err(); err != nil {
		t.Fatalf("Err() = %v on all-empty merge", err)
	}
}

func TestMergeNoSources(t *testing.T) {
	m := newMergeScanner(nil, 0)
	if m.Next() {
		t.Fatal("Next() = true with no sources")
	}
	if err := m.Err(); err != nil {
		t.Fatalf("Err() = %v with no sources", err)
	}
}

func TestMergeSourceErrorSurfaces(t *testing.T) {
	// One source dies mid-stream: the merge must stop with that error, not
	// quietly deliver the surviving sources' pairs as a complete result.
	boom := errors.New("shard died")
	a := newFakeStream(1, 10, 4, 40, 7, 70)
	b := newFakeStream(2, 20, 5, 50, 8, 80)
	b.failAfter, b.err = 1, boom
	m := newMergeScanner([]kvStream{a, b}, 0)
	keys, _ := drain(t, m)
	if err := m.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
	// Pairs delivered before the failure stay valid, but nothing after the
	// failing source's last good key may have been emitted as "complete".
	for _, k := range keys {
		if k > 2 {
			t.Fatalf("pair %d delivered after source failure point", k)
		}
	}
	if m.Next() {
		t.Fatal("Next() = true after source error")
	}
}

func TestMergeSourceErrorOnFirstPull(t *testing.T) {
	boom := errors.New("dead on arrival")
	a := newFakeStream(1, 10)
	b := newFakeStream(2, 20)
	b.failAfter, b.err = 0, boom
	m := newMergeScanner([]kvStream{a, b}, 0)
	if m.Next() {
		t.Fatal("Next() = true when a source fails priming")
	}
	if err := m.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
}

func TestMergeMaxBudget(t *testing.T) {
	a := newFakeStream(1, 10, 3, 30, 5, 50)
	b := newFakeStream(2, 20, 4, 40, 6, 60)
	m := newMergeScanner([]kvStream{a, b}, 4)
	keys, vals := drain(t, m)
	if err := m.Err(); err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	wantPairs(t, keys, vals, []uint64{1, 2, 3, 4}, []uint64{10, 20, 30, 40})
	if got := m.Total(); got != 4 {
		t.Fatalf("Total() = %d, want 4", got)
	}
}

func TestMergeCloseClosesAllSources(t *testing.T) {
	a, b := newFakeStream(1, 10), newFakeStream(2, 20)
	m := newMergeScanner([]kvStream{a, b}, 0)
	m.Next()
	if err := m.Close(); err != nil {
		t.Fatalf("Close() = %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close() = %v", err)
	}
	if a.closed != 1 || b.closed != 1 {
		t.Fatalf("sources closed (%d, %d) times, want exactly once each", a.closed, b.closed)
	}
	if m.Next() {
		t.Fatal("Next() = true after Close")
	}
}

func TestFailedMergeScanner(t *testing.T) {
	boom := errors.New("setup failed")
	m := failedMergeScanner(boom)
	if m.Next() {
		t.Fatal("Next() = true on failed merge")
	}
	if err := m.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close() = %v", err)
	}
}
