package core_test

import (
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"dytis/internal/check"
	"dytis/internal/core"
)

// FuzzDifferential drives random operation sequences against a map oracle in
// both locking modes, with small geometry so a few dozen keys already force
// splits, remaps, expansions, and directory doublings. The structural
// validator runs after every structure event: in single-threaded mode
// directly from the Observer callback (the maintenance paths fire events only
// once the structure is consistent again), in Concurrent mode after each
// operation that fired events — the callback runs with the EH/segment locks
// held there, and check.Check needs to take them itself.
//
// Input format: a stream of 10-byte records — 1 op byte, 8 key bytes
// (big-endian), 1 value byte. op%5 selects insert / delete / get / scan /
// bulk-load; trailing partial records are ignored.

const (
	diffRecordLen = 10
	diffMaxOps    = 200
)

func diffOpts(conc bool) core.Options {
	return core.Options{
		FirstLevelBits: 2,
		BucketEntries:  4,
		StartDepth:     2,
		BaseSegBuckets: 4,
		Concurrent:     conc,
	}
}

// checkingObserver validates the whole index from inside the structure-event
// callback. Single-threaded mode only: in Concurrent mode events fire while
// the maintenance path holds the EH and/or segment locks, and check.Check
// must take those locks itself.
type checkingObserver struct {
	d          *core.DyTIS
	events     int64
	violations []check.Violation
}

func (o *checkingObserver) RecordOp(core.Op, int, time.Duration) {}

func (o *checkingObserver) StructureEvent(ev core.StructureEvent) {
	o.events++
	if len(o.violations) == 0 { // first failure is enough; keep the rest cheap
		o.violations = check.Check(o.d)
	}
}

// countingObserver only counts events; the fuzz driver checks the index
// between operations, when it is quiescent.
type countingObserver struct{ events int64 }

func (o *countingObserver) RecordOp(core.Op, int, time.Duration) {}
func (o *countingObserver) StructureEvent(core.StructureEvent)   { o.events++ }

// oracleScan returns up to max oracle pairs with key >= start, ascending.
func oracleScan(oracle map[uint64]uint64, start uint64, max int) ([]uint64, []uint64) {
	var ks []uint64
	for k := range oracle {
		if k >= start {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	if len(ks) > max {
		ks = ks[:max]
	}
	vs := make([]uint64, len(ks))
	for i, k := range ks {
		vs[i] = oracle[k]
	}
	return ks, vs
}

// bulkPairs derives a strictly-ascending key/value load from (seed, n),
// clamped before uint64 wraparound.
func bulkPairs(seed uint64, n int) (ks, vs []uint64) {
	step := seed%1021 + 1
	k := seed
	for i := 0; i < n; i++ {
		ks = append(ks, k)
		vs = append(vs, k*2+1)
		if k > ^uint64(0)-step {
			break
		}
		k += step
	}
	return ks, vs
}

func runDifferential(t *testing.T, data []byte, conc bool) {
	mode := "single"
	if conc {
		mode = "concurrent"
	}
	o := diffOpts(conc)
	var checker *checkingObserver
	var counter *countingObserver
	if conc {
		counter = &countingObserver{}
		o.Observer = counter
	} else {
		checker = &checkingObserver{}
		o.Observer = checker
	}
	d := core.New(o)
	if checker != nil {
		checker.d = d
	}

	oracle := map[uint64]uint64{}
	var seenEvents int64
	for op := 0; len(data) >= diffRecordLen && op < diffMaxOps; op++ {
		kind := data[0] % 5
		key := binary.BigEndian.Uint64(data[1:9])
		val := uint64(data[9])
		data = data[diffRecordLen:]

		switch kind {
		case 0: // insert
			d.Insert(key, val)
			oracle[key] = val
		case 1: // delete
			got := d.Delete(key)
			_, want := oracle[key]
			if got != want {
				t.Fatalf("[%s] op %d: Delete(%#x) = %v, oracle %v", mode, op, key, got, want)
			}
			delete(oracle, key)
		case 2: // search
			v, ok := d.Get(key)
			wv, wok := oracle[key]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("[%s] op %d: Get(%#x) = %d,%v, oracle %d,%v", mode, op, key, v, ok, wv, wok)
			}
		case 3: // scan
			max := int(val%16) + 1
			got := d.Scan(key, max, nil)
			wk, wv := oracleScan(oracle, key, max)
			if len(got) != len(wk) {
				t.Fatalf("[%s] op %d: Scan(%#x, %d) returned %d pairs, oracle %d", mode, op, key, max, len(got), len(wk))
			}
			for i := range got {
				if got[i].Key != wk[i] || got[i].Value != wv[i] {
					t.Fatalf("[%s] op %d: Scan(%#x, %d)[%d] = (%#x,%d), oracle (%#x,%d)",
						mode, op, key, max, i, got[i].Key, got[i].Value, wk[i], wv[i])
				}
			}
		case 4: // bulk load: replaces the index contents and the oracle
			ks, vs := bulkPairs(key, int(val%64)+1)
			d.LoadSorted(ks, vs)
			oracle = make(map[uint64]uint64, len(ks))
			for i, k := range ks {
				oracle[k] = vs[i]
			}
		}

		if checker != nil {
			if len(checker.violations) != 0 {
				for _, v := range checker.violations {
					t.Errorf("[%s] op %d: in-event violation: %v", mode, op, v)
				}
				t.FailNow()
			}
			seenEvents = checker.events
		} else if counter.events != seenEvents {
			seenEvents = counter.events
			if vs := check.Check(d); len(vs) != 0 {
				for _, v := range vs {
					t.Errorf("[%s] op %d: post-event violation: %v", mode, op, v)
				}
				t.FailNow()
			}
		}
	}

	// Final differential sweep: size, full ordered contents, structure.
	if d.Len() != len(oracle) {
		t.Fatalf("[%s] final Len = %d, oracle %d", mode, d.Len(), len(oracle))
	}
	got := d.Scan(0, len(oracle)+1, nil)
	wk, wv := oracleScan(oracle, 0, len(oracle))
	if len(got) != len(wk) {
		t.Fatalf("[%s] final scan returned %d pairs, oracle %d", mode, len(got), len(wk))
	}
	for i := range got {
		if got[i].Key != wk[i] || got[i].Value != wv[i] {
			t.Fatalf("[%s] final scan[%d] = (%#x,%d), oracle (%#x,%d)",
				mode, i, got[i].Key, got[i].Value, wk[i], wv[i])
		}
	}
	if vs := check.Check(d); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("[%s] final violation: %v", mode, v)
		}
		t.FailNow()
	}
}

func FuzzDifferential(f *testing.F) {
	rec := func(op byte, key uint64, val byte) []byte {
		b := make([]byte, diffRecordLen)
		b[0] = op
		binary.BigEndian.PutUint64(b[1:9], key)
		b[9] = val
		return b
	}
	var mixed []byte
	for i := uint64(0); i < 30; i++ {
		mixed = append(mixed, rec(0, i*257, byte(i))...)
	}
	mixed = append(mixed, rec(3, 0, 15)...)
	mixed = append(mixed, rec(1, 5*257, 0)...)
	mixed = append(mixed, rec(4, 1<<40, 63)...)
	f.Add(mixed)
	f.Add(append(append(rec(0, 0, 1), rec(0, ^uint64(0), 2)...), rec(3, 0, 9)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		runDifferential(t, data, false)
		runDifferential(t, data, true)
	})
}
