// vet-dytis is the driver for the project's custom analyzers (lockcheck,
// atomiccheck), speaking the `go vet -vettool` protocol:
//
//	go build -o /tmp/vet-dytis ./cmd/vet-dytis
//	go vet -vettool=/tmp/vet-dytis ./internal/core/...
//
// The protocol (normally provided by golang.org/x/tools' unitchecker, which
// this stdlib-only module reimplements): the go command probes the tool with
// -V=full for a version fingerprint and -flags for its flag set, then
// invokes it once per package with a single *.cfg argument describing the
// parsed unit — file lists, the import map, and compiled export data for
// every dependency. Diagnostics go to stderr as "pos: message" and a
// non-zero exit marks the package failed. Select a subset of analyzers with
// -lockcheck / -atomiccheck; with neither flag set, all run.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"dytis/tools/analyzers"
)

// vetConfig is the JSON schema of the *.cfg file the go command hands to
// vet tools, one per package unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	enabled := map[string]*bool{}
	for _, a := range analyzers.All() {
		enabled[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	printVersion := flag.String("V", "", "print version and exit (-V=full for a fingerprint)")
	flagsJSON := flag.Bool("flags", false, "print flags in JSON and exit")
	flag.Parse()

	if *printVersion != "" {
		version()
		return
	}
	if *flagsJSON {
		printFlags()
		return
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: vet-dytis [-lockcheck] [-atomiccheck] <unit.cfg>")
		fmt.Fprintln(os.Stderr, "run via: go vet -vettool=$(command -v vet-dytis) ./...")
		os.Exit(2)
	}

	var run []*analyzers.Analyzer
	for _, a := range analyzers.All() {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	if len(run) == 0 {
		run = analyzers.All()
	}
	os.Exit(checkUnit(args[0], run))
}

// version prints the fingerprint line the go command caches vet results by.
// The format is fixed by cmd/go: "<name> version <semver-ish>
// buildID=<hex>"; hashing our own executable makes rebuilt tools invalidate
// the cache.
func version() {
	f, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("vet-dytis version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// printFlags answers the go command's -flags probe: a JSON array of the
// tool's flags so cmd/go knows which analyzer selections it may forward.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

func checkUnit(cfgPath string, run []*analyzers.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vet-dytis: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects a facts file for every unit, even dependency
	// units analyzed only for export (VetxOnly). These analyzers are
	// fact-free, so the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the import map to compiled export data
	// listed in PackageFile — the same two-step lookup unitchecker does.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tconf := types.Config{Importer: imp, Error: func(error) {}}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vet-dytis: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range run {
		pass := &analyzers.Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analyzers.Diagnostic) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
				exit = 1
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "vet-dytis: %s: %v\n", a.Name, err)
			exit = 1
		}
	}
	return exit
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
