package pgm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dytis/internal/kv"
)

func TestStaticApproxWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 100000)
	k := uint64(0)
	for i := range keys {
		k += 1 + uint64(rng.Intn(1000))
		keys[i] = k
	}
	st := buildStatic(keys)
	if len(st.levels) == 0 {
		t.Fatal("no levels")
	}
	for i := 0; i < len(keys); i += 37 {
		p, eps := st.approxPos(keys[i], len(keys))
		if abs(p-i) > eps+1 {
			t.Fatalf("key %d at %d predicted %d (eps %d)", keys[i], i, p, eps)
		}
	}
	// The hierarchy must shrink geometrically.
	for li := 1; li < len(st.levels); li++ {
		if len(st.levels[li]) > len(st.levels[li-1]) {
			t.Fatalf("level %d larger than level %d", li, li-1)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestInsertGet(t *testing.T) {
	x := New()
	const n = 30000
	for i := uint64(0); i < n; i++ {
		x.Insert(i*3, i)
	}
	if x.Len() != n {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := uint64(0); i < n; i += 7 {
		v, ok := x.Get(i * 3)
		if !ok || v != i {
			t.Fatalf("Get(%d)=%d,%v", i*3, v, ok)
		}
	}
	if _, ok := x.Get(1); ok {
		t.Fatal("phantom key")
	}
	if x.Merges == 0 {
		t.Fatal("no run merges happened")
	}
}

func TestRunChainIsGeometric(t *testing.T) {
	x := New()
	for i := uint64(0); i < 100000; i++ {
		x.Insert(i, i)
	}
	runs := x.Runs()
	total := 0
	for _, r := range runs {
		total += r
	}
	if total < 100000 {
		t.Fatalf("runs hold %d keys, want >= 100000", total)
	}
	if len(runs) > 14 {
		t.Fatalf("too many runs: %v", runs)
	}
}

func TestUpdateInPlace(t *testing.T) {
	x := New()
	x.Insert(5, 1)
	x.Insert(5, 2)
	if x.Len() != 1 {
		t.Fatalf("Len=%d", x.Len())
	}
	if v, _ := x.Get(5); v != 2 {
		t.Fatalf("v=%d", v)
	}
	// Update of a key already flushed into a run.
	for i := uint64(100); i < 100+2*bufferCap; i++ {
		x.Insert(i, i)
	}
	x.Insert(100, 999)
	if v, _ := x.Get(100); v != 999 {
		t.Fatal("update of run-resident key failed")
	}
}

func TestDeleteAndTombstones(t *testing.T) {
	x := New()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		x.Insert(i, i)
	}
	for i := uint64(0); i < n; i += 2 {
		if !x.Delete(i) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if x.Delete(0) {
		t.Fatal("double delete")
	}
	if x.Len() != n/2 {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := uint64(0); i < n; i++ {
		_, ok := x.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v", i, ok)
		}
	}
	// Deleted keys can come back.
	x.Insert(0, 42)
	if v, ok := x.Get(0); !ok || v != 42 {
		t.Fatal("reinsert failed")
	}
}

func TestScanShadowsAndSkipsTombstones(t *testing.T) {
	x := New()
	for i := uint64(0); i < 5000; i++ {
		x.Insert(i*2, i)
	}
	x.Insert(10, 999) // update: newest must win in scan
	x.Delete(12)
	got := x.Scan(8, 4, nil)
	want := []kv.KV{{Key: 8, Value: 4}, {Key: 10, Value: 999}, {Key: 14, Value: 7}, {Key: 16, Value: 8}}
	if len(got) != len(want) {
		t.Fatalf("scan: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d]=%+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBulkLoad(t *testing.T) {
	keys := make([]uint64, 50000)
	vals := make([]uint64, 50000)
	for i := range keys {
		keys[i] = uint64(i) * 5
		vals[i] = uint64(i)
	}
	x := New()
	x.BulkLoad(keys, vals)
	if x.Len() != len(keys) {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := 0; i < len(keys); i += 11 {
		if v, ok := x.Get(keys[i]); !ok || v != vals[i] {
			t.Fatalf("Get(%d)", keys[i])
		}
	}
	// Inserts after bulk load interleave correctly.
	x.Insert(3, 777)
	if got := x.Scan(0, 2, nil); len(got) != 2 || got[1].Key != 3 {
		t.Fatalf("scan after post-load insert: %v", got)
	}
}

func TestWideKeySpace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := New()
	keys := make([]uint64, 20000)
	for i := range keys {
		keys[i] = rng.Uint64()
		x.Insert(keys[i], uint64(i))
	}
	for i, k := range keys {
		v, ok := x.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%#x)", k)
		}
	}
}

func TestQuickMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New()
		ref := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			k := uint64(rng.Intn(1200)) * 97
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := rng.Uint64()
				x.Insert(k, v)
				ref[k] = v
			case 3:
				_, in := ref[k]
				if x.Delete(k) != in {
					return false
				}
				delete(ref, k)
			case 4:
				gv, gok := x.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			}
		}
		if x.Len() != len(ref) {
			return false
		}
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := x.Scan(0, len(ref)+1, nil)
		if len(got) != len(keys) {
			return false
		}
		for i, k := range keys {
			if got[i] != (kv.KV{Key: k, Value: ref[k]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	x := New()
	for i := uint64(0); i < 10000; i++ {
		x.Insert(i, i)
	}
	if x.MemoryFootprint() <= 0 {
		t.Fatal("footprint")
	}
}
