package client

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrScanInterrupted matches (via errors.Is) a scatter-gather scan that one
// of its per-shard streams killed mid-merge — a shard died, its connection
// broke, or a cutover moved its range. The pairs delivered before the stop
// are valid; the result as a whole is incomplete and the scan must be
// re-issued. errors.As with *ScanInterruptedError recovers which source
// failed and why.
var ErrScanInterrupted = errors.New("client: scan interrupted")

// ScanInterruptedError is the typed error of a merge stopped by one of its
// sources failing partway.
type ScanInterruptedError struct {
	// Source is the index of the failed stream in the merge's source order.
	Source int
	// Err is the underlying stream failure.
	Err error
}

func (e *ScanInterruptedError) Error() string {
	return fmt.Sprintf("client: scan interrupted by source %d: %v", e.Source, e.Err)
}

func (e *ScanInterruptedError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrScanInterrupted) match.
func (e *ScanInterruptedError) Is(target error) bool { return target == ErrScanInterrupted }

// kvStream is the pull-iterator shape the k-way merge consumes; *Scanner is
// the production implementation (one per shard in a scatter-gather scan),
// and tests substitute fakes.
type kvStream interface {
	Next() bool
	Key() uint64
	Value() uint64
	Err() error
	Close() error
}

// MergeScanner merges several ascending kvStreams into one ascending
// iterator — the gather half of Cluster.ScanStream. It has the same pull
// surface as Scanner: Next/Key/Value, Err after Next returns false, Close
// (idempotent) to release the underlying streams early.
//
// Keys equal across sources are emitted once per source, ordered by source
// index; shards own disjoint ranges, so a production scatter-gather never
// produces one. Any source error ends the merge with that error — a shard
// dying mid-scan surfaces as a failed scan, never as a silently shorter
// result.
type MergeScanner struct {
	srcs []kvStream
	h    mergeHeap
	max  uint64 // total pair budget, 0 = unbounded

	started   bool
	closed    bool
	done      bool
	err       error
	key, val  uint64
	delivered uint64
}

// newMergeScanner merges srcs; max bounds the total pairs (0 = unbounded).
func newMergeScanner(srcs []kvStream, max uint64) *MergeScanner {
	return &MergeScanner{srcs: srcs, max: max}
}

// failedMergeScanner is a merge that was dead on arrival (its setup failed
// before any source existed); Next reports false and Err reports err.
func failedMergeScanner(err error) *MergeScanner {
	return &MergeScanner{err: err, done: true}
}

// Next advances to the next pair in ascending key order across all sources.
func (m *MergeScanner) Next() bool {
	if m.err != nil || m.closed || m.done {
		return false
	}
	if !m.started {
		m.started = true
		for i := range m.srcs {
			if !m.advance(i) {
				return false
			}
		}
	}
	if len(m.h) == 0 || (m.max > 0 && m.delivered >= m.max) {
		m.done = true
		return false
	}
	e := m.h[0]
	m.key, m.val = e.key, e.val
	heap.Pop(&m.h)
	m.delivered++
	if !m.advance(e.idx) {
		return false
	}
	return true
}

// advance pulls the next pair from source idx into the heap, reporting
// false when the merge must stop because that source failed.
func (m *MergeScanner) advance(idx int) bool {
	s := m.srcs[idx]
	if s.Next() {
		heap.Push(&m.h, mergeEntry{key: s.Key(), val: s.Value(), idx: idx})
		return true
	}
	if err := s.Err(); err != nil {
		m.err = &ScanInterruptedError{Source: idx, Err: err}
		return false
	}
	return true // source cleanly exhausted
}

// Key returns the current pair's key. Valid after Next returned true.
func (m *MergeScanner) Key() uint64 { return m.key }

// Value returns the current pair's value. Valid after Next returned true.
func (m *MergeScanner) Value() uint64 { return m.val }

// Err returns the error that stopped the merge, nil after a complete one.
func (m *MergeScanner) Err() error { return m.err }

// Total returns how many pairs the merge delivered so far.
func (m *MergeScanner) Total() uint64 { return m.delivered }

// Close releases every underlying stream. Idempotent; the first source
// close error (if any) is returned, but all sources are closed regardless.
func (m *MergeScanner) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	var first error
	for _, s := range m.srcs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// mergeEntry is one source's current head in the merge heap.
type mergeEntry struct {
	key, val uint64
	idx      int
}

// mergeHeap orders entries by key, breaking ties by source index so equal
// keys emit deterministically.
type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *mergeHeap) Push(x any) { *h = append(*h, x.(mergeEntry)) }

func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
