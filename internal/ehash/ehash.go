// Package ehash implements classic Extendible Hashing (Fagin et al., TODS
// 1979), the baseline labeled "EH" in Figure 9 of the DyTIS paper.
//
// Keys are hashed to pseudo-keys with a 64-bit bijective mixer; the directory
// is indexed by the GD most significant bits of the pseudo-key, and each
// bucket holds a fixed number of entries kept sorted by pseudo-key so lookups
// within a bucket are a binary search. Because the hash destroys key order,
// the structure supports only point operations (no scans) — exactly the
// limitation the paper's motivation section calls out.
package ehash

import "sort"

// Mix64 is the 64-bit finalizer of MurmurHash3: a bijective mixing function,
// so pseudo-keys are unique per key. It is shared with the CCEH baseline.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// DefaultBucketEntries matches the paper's 2 KB bucket: 128 key/value pairs.
const DefaultBucketEntries = 128

type bucket struct {
	ld   uint8    // local depth
	pks  []uint64 // sorted pseudo-keys
	keys []uint64
	vals []uint64
}

func newBucket(ld uint8, cap_ int) *bucket {
	return &bucket{
		ld:   ld,
		pks:  make([]uint64, 0, cap_),
		keys: make([]uint64, 0, cap_),
		vals: make([]uint64, 0, cap_),
	}
}

// find returns the index of pk and whether it is present.
func (b *bucket) find(pk uint64) (int, bool) {
	i := sort.Search(len(b.pks), func(i int) bool { return b.pks[i] >= pk })
	return i, i < len(b.pks) && b.pks[i] == pk
}

func (b *bucket) insertAt(i int, pk, k, v uint64) {
	b.pks = append(b.pks, 0)
	b.keys = append(b.keys, 0)
	b.vals = append(b.vals, 0)
	copy(b.pks[i+1:], b.pks[i:])
	copy(b.keys[i+1:], b.keys[i:])
	copy(b.vals[i+1:], b.vals[i:])
	b.pks[i], b.keys[i], b.vals[i] = pk, k, v
}

func (b *bucket) removeAt(i int) {
	b.pks = append(b.pks[:i], b.pks[i+1:]...)
	b.keys = append(b.keys[:i], b.keys[i+1:]...)
	b.vals = append(b.vals[:i], b.vals[i+1:]...)
}

// Table is an extendible hash table. It is not safe for concurrent use.
type Table struct {
	dir     []*bucket
	gd      uint8
	entries int // per-bucket capacity
	n       int
}

// New returns a table whose buckets hold bucketEntries pairs each.
// bucketEntries <= 0 selects DefaultBucketEntries.
func New(bucketEntries int) *Table {
	if bucketEntries <= 0 {
		bucketEntries = DefaultBucketEntries
	}
	t := &Table{gd: 1, entries: bucketEntries}
	t.dir = []*bucket{newBucket(1, bucketEntries), newBucket(1, bucketEntries)}
	return t
}

func (t *Table) dirIndex(pk uint64) uint64 { return pk >> (64 - uint(t.gd)) }

// Get returns the value stored for key.
func (t *Table) Get(key uint64) (uint64, bool) {
	pk := Mix64(key)
	b := t.dir[t.dirIndex(pk)]
	if i, ok := b.find(pk); ok {
		return b.vals[i], true
	}
	return 0, false
}

// Insert stores or updates key.
func (t *Table) Insert(key, value uint64) {
	pk := Mix64(key)
	for {
		b := t.dir[t.dirIndex(pk)]
		i, ok := b.find(pk)
		if ok {
			b.vals[i] = value
			return
		}
		if len(b.pks) < t.entries {
			b.insertAt(i, pk, key, value)
			t.n++
			return
		}
		t.split(b)
	}
}

// split divides bucket b in two, doubling the directory first if needed.
func (t *Table) split(b *bucket) {
	if b.ld == t.gd {
		t.doubleDirectory()
	}
	nld := b.ld + 1
	left := newBucket(nld, t.entries)
	right := newBucket(nld, t.entries)
	// Entries are sorted by pseudo-key; the split bit is the nld-th MSB, so
	// a single partition point separates the halves.
	bit := uint64(1) << (64 - uint(nld))
	cut := sort.Search(len(b.pks), func(i int) bool { return b.pks[i]&bit != 0 })
	left.pks = append(left.pks, b.pks[:cut]...)
	left.keys = append(left.keys, b.keys[:cut]...)
	left.vals = append(left.vals, b.vals[:cut]...)
	right.pks = append(right.pks, b.pks[cut:]...)
	right.keys = append(right.keys, b.keys[cut:]...)
	right.vals = append(right.vals, b.vals[cut:]...)

	// Redirect the directory entries that pointed at b: the first half of
	// the contiguous run goes to left, the second half to right.
	span := 1 << (t.gd - b.ld) // number of dir entries pointing to b
	// First index of the run: prefix of b's pseudo-keys extended with zeros.
	var first uint64
	if len(b.pks) > 0 {
		first = b.pks[0] >> (64 - uint(t.gd)) &^ uint64(span-1)
	} else {
		// Empty bucket: locate it by scanning (rare; only via deletes).
		for i, d := range t.dir {
			if d == b {
				first = uint64(i) &^ uint64(span-1)
				break
			}
		}
	}
	half := span / 2
	for i := 0; i < half; i++ {
		t.dir[first+uint64(i)] = left
	}
	for i := half; i < span; i++ {
		t.dir[first+uint64(i)] = right
	}
}

func (t *Table) doubleDirectory() {
	nd := make([]*bucket, len(t.dir)*2)
	for i, b := range t.dir {
		nd[2*i] = b
		nd[2*i+1] = b
	}
	t.dir = nd
	t.gd++
}

// Delete removes key, reporting whether it was present. Buckets are not
// merged on underflow (classic implementations typically do not).
func (t *Table) Delete(key uint64) bool {
	pk := Mix64(key)
	b := t.dir[t.dirIndex(pk)]
	if i, ok := b.find(pk); ok {
		b.removeAt(i)
		t.n--
		return true
	}
	return false
}

// Len returns the number of live keys.
func (t *Table) Len() int { return t.n }

// GlobalDepth returns the directory's global depth (for tests/metrics).
func (t *Table) GlobalDepth() int { return int(t.gd) }

// DirSize returns the number of directory entries.
func (t *Table) DirSize() int { return len(t.dir) }
