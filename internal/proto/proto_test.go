package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// roundTripReq frames r, re-reads it through ReadFrame, decodes, and returns
// the decoded request.
func roundTripReq(t *testing.T, r *Request) *Request {
	t.Helper()
	frame, err := AppendRequest(nil, r)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	body, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	var got Request
	if err := DecodeRequest(body, &got); err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return &got
}

func roundTripResp(t *testing.T, r *Response) *Response {
	t.Helper()
	frame, err := AppendResponse(nil, r)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	body, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	var got Response
	if err := DecodeResponse(body, &got); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return &got
}

// normalize empties nil-vs-zero-length slice differences for comparison.
func normReq(r *Request) {
	if len(r.Keys) == 0 {
		r.Keys = nil
	}
	if len(r.Vals) == 0 {
		r.Vals = nil
	}
}

func normResp(r *Response) {
	if len(r.Keys) == 0 {
		r.Keys = nil
	}
	if len(r.Vals) == 0 {
		r.Vals = nil
	}
	if len(r.Founds) == 0 {
		r.Founds = nil
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpLen},
		{ID: 3, Op: OpGet, Key: math.MaxUint64},
		{ID: 4, Op: OpDelete, Key: 0},
		{ID: 5, Op: OpInsert, Key: 42, Val: 99},
		{ID: 6, Op: OpScan, Key: 7, Max: MaxScan},
		{ID: 7, Op: OpGetBatch, Keys: []uint64{1, 2, 3, math.MaxUint64}},
		{ID: 8, Op: OpDeleteBatch, Keys: []uint64{0}},
		{ID: 9, Op: OpInsertBatch, Keys: []uint64{1, 2}, Vals: []uint64{10, 20}},
		{ID: math.MaxUint64, Op: OpGetBatch}, // empty batch
	}
	for _, want := range cases {
		got := roundTripReq(t, &want)
		normReq(&want)
		normReq(got)
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("round trip %v: got %+v want %+v", want.Op, *got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpGet, Found: true, Val: 123},
		{ID: 3, Op: OpGet, Found: false, Val: 0},
		{ID: 4, Op: OpInsert},
		{ID: 5, Op: OpDelete, Found: true},
		{ID: 6, Op: OpScan, Keys: []uint64{1, 2}, Vals: []uint64{10, 20}},
		{ID: 7, Op: OpGetBatch, Vals: []uint64{5, 0}, Founds: []bool{true, false}},
		{ID: 8, Op: OpInsertBatch},
		{ID: 9, Op: OpDeleteBatch, Founds: []bool{true, false, true}},
		{ID: 10, Op: OpLen, Val: 1 << 40},
		{ID: 11, Op: OpGet, Status: StatusBadRequest, Msg: "nope"},
		{ID: 12, Op: OpScan, Status: StatusShuttingDown, Msg: "draining"},
	}
	for _, want := range cases {
		got := roundTripResp(t, &want)
		normResp(&want)
		normResp(got)
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("round trip %v: got %+v want %+v", want.Op, *got, want)
		}
	}
}

// TestDecodeReuse verifies the decoder reuses caller buffers instead of
// allocating per frame — the property the server's per-connection scratch
// space relies on.
func TestDecodeReuse(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 1, Op: OpGetBatch, Keys: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Keys: make([]uint64, 0, 64), Vals: make([]uint64, 0, 64)}
	keysCap := cap(req.Keys)
	if err := DecodeRequest(frame[4:], &req); err != nil {
		t.Fatal(err)
	}
	if cap(req.Keys) != keysCap {
		t.Errorf("Keys reallocated: cap %d -> %d", keysCap, cap(req.Keys))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeRequest(frame[4:], &req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeRequest allocated %.1f times per call with warm buffers", allocs)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	valid := func(r *Request) []byte {
		frame, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		return frame[4:] // body
	}
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"id only", make([]byte, 8), ErrTruncated},
		{"zero opcode", make([]byte, 9), ErrBadOpcode},
		{"unknown opcode", append(make([]byte, 8), 0xEE), ErrBadOpcode},
		{"get truncated key", valid(&Request{Op: OpGet, Key: 1})[:12], ErrTruncated},
		{"trailing bytes", append(valid(&Request{Op: OpPing}), 0), ErrTrailingBytes},
		{"batch count truncated", valid(&Request{Op: OpGetBatch, Keys: []uint64{1, 2}})[:11], ErrTruncated},
		{"batch count lies", func() []byte {
			b := valid(&Request{Op: OpGetBatch, Keys: []uint64{1}})
			binary.BigEndian.PutUint32(b[9:], 1000) // claims 1000 keys, carries 1
			return b
		}(), ErrTruncated},
		{"batch over limit", func() []byte {
			b := valid(&Request{Op: OpGetBatch})
			binary.BigEndian.PutUint32(b[9:], MaxBatch+1)
			return b
		}(), ErrLimit},
		{"scan max over limit", func() []byte {
			b := valid(&Request{Op: OpScan, Key: 1, Max: 1})
			binary.BigEndian.PutUint32(b[17:], MaxScan+1)
			return b
		}(), ErrLimit},
	}
	for _, tc := range cases {
		var req Request
		err := DecodeRequest(tc.body, &req)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got error %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized length prefix is rejected before any body allocation.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	// A length prefix shorter than the id+opcode prefix is rejected.
	binary.BigEndian.PutUint32(hdr[:], 3)
	if _, _, err := ReadFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)), nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("undersized frame: got %v, want ErrTruncated", err)
	}
	// A truncated body surfaces as ErrUnexpectedEOF, not a hang or panic.
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, _, err := ReadFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestAppendRequestRejectsOversizedBatch(t *testing.T) {
	keys := make([]uint64, MaxBatch+1)
	if _, err := AppendRequest(nil, &Request{Op: OpGetBatch, Keys: keys}); !errors.Is(err, ErrLimit) {
		t.Errorf("got %v, want ErrLimit", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpInsertBatch, Keys: []uint64{1}, Vals: nil}); err == nil {
		t.Error("keys/vals mismatch not rejected")
	}
}

// TestFrameSizing pins the doc-comment claim that the largest legal frames
// fit inside MaxFrame.
func TestFrameSizing(t *testing.T) {
	keys := make([]uint64, MaxBatch)
	vals := make([]uint64, MaxBatch)
	frame, err := AppendRequest(nil, &Request{Op: OpInsertBatch, Keys: keys, Vals: vals})
	if err != nil {
		t.Fatalf("max insert batch does not fit: %v", err)
	}
	if len(frame) > MaxFrame {
		t.Fatalf("max insert batch frame is %d bytes > MaxFrame %d", len(frame), MaxFrame)
	}
	founds := make([]bool, MaxBatch)
	if _, err := AppendResponse(nil, &Response{Op: OpGetBatch, Vals: vals, Founds: founds}); err != nil {
		t.Fatalf("max get-batch response does not fit: %v", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpScan, Keys: keys[:MaxScan], Vals: vals[:MaxScan]}); err != nil {
		t.Fatalf("max scan response does not fit: %v", err)
	}
}
