package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dytis/internal/core"
	"dytis/internal/datasets"
)

func loadedIndex(t *testing.T, o *Observer, conc bool, n int) (*core.DyTIS, []uint64) {
	t.Helper()
	keys := datasets.Taxi.Gen(n, 1)
	d := core.New(core.Options{Concurrent: conc, Observer: o})
	o.Attach(d)
	for _, k := range keys {
		d.Insert(k, k)
	}
	return d, keys
}

// TestObserverRecordsOps checks each operation lands in its histogram with
// the exact cardinality of the operations performed.
func TestObserverRecordsOps(t *testing.T) {
	o := New()
	d, keys := loadedIndex(t, o, false, 50000)
	for _, k := range keys[:1000] {
		d.Get(k)
	}
	for _, k := range keys[:10] {
		d.Delete(k)
	}
	d.Scan(0, 100, nil)
	d.ScanFunc(0, func(k, v uint64) bool { return false })

	want := map[core.Op]uint64{
		core.OpInsert: uint64(len(keys)),
		core.OpGet:    1000,
		core.OpDelete: 10,
		core.OpScan:   2,
	}
	for op, n := range want {
		h := o.OpHist(op)
		if h.Count() != n {
			t.Errorf("%v histogram count = %d, want %d", op, h.Count(), n)
		}
		if n > 0 && h.Quantile(0.99) < h.Quantile(0.5) {
			t.Errorf("%v quantiles not monotone: p50=%v p99=%v", op, h.Quantile(0.5), h.Quantile(0.99))
		}
	}
}

// TestEventParityWithStats asserts the event stream has exactly the same
// cardinality as the index's own maintenance counters, kind by kind.
func TestEventParityWithStats(t *testing.T) {
	o := New()
	var fired [core.NumEventKinds]atomic.Int64
	o.Subscribe(func(ev core.StructureEvent) { fired[ev.Kind].Add(1) })
	d := core.New(core.Options{Observer: o})
	o.Attach(d)
	// A dense cluster in one EH drives local depth past L_start, so the
	// remap/expansion paths run in addition to splits and doublings.
	for i := uint64(0); i < 300000; i++ {
		d.Insert(i*1000, i)
	}
	// Deleting most keys collapses utilization and fires the shrink path.
	for i := uint64(0); i < 300000; i++ {
		if i%16 != 0 {
			d.Delete(i * 1000)
		}
	}

	st := d.Stats()
	want := map[core.EventKind]int64{
		core.EvSplit:        st.Splits,
		core.EvRemap:        st.Remaps,
		core.EvExpand:       st.Expansions,
		core.EvDouble:       st.Doublings,
		core.EvRemapFailure: st.RemapFailures,
		core.EvShrink:       st.Shrinks,
	}
	var total int64
	for k, n := range want {
		if got := o.EventCount(k); got != n {
			t.Errorf("EventCount(%v) = %d, want %d (stats parity)", k, got, n)
		}
		if got := fired[k].Load(); got != n {
			t.Errorf("subscriber saw %d %v events, want %d", got, k, n)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("workload triggered no structure events; test is vacuous")
	}
	if st.Splits == 0 || st.Remaps+st.Expansions == 0 {
		t.Fatalf("expected splits and remap/expansion activity, got %+v", st)
	}
	if st.Shrinks == 0 {
		t.Fatalf("delete phase fired no shrinks; test is vacuous for EvShrink (stats %+v)", st)
	}
	if st.ShrinkNS == 0 {
		t.Errorf("Shrinks=%d but ShrinkNS=0: shrink duration not booked", st.Shrinks)
	}
}

// TestConcurrentHooks drives a Concurrent index from many goroutines with a
// subscriber attached; under -race this is the acceptance check that hooks
// fire safely under concurrent load.
func TestConcurrentHooks(t *testing.T) {
	o := New()
	var events atomic.Int64
	o.Subscribe(func(ev core.StructureEvent) { events.Add(1) })
	d := core.New(core.Options{Concurrent: true, Observer: o})
	o.Attach(d)

	keys := datasets.Taxi.Gen(80000, 2)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += workers {
				d.Insert(keys[i], keys[i])
				if i%3 == 0 {
					d.Get(keys[i])
				}
				if i%1024 == 0 {
					d.Scan(keys[i], 16, nil)
				}
			}
		}(w)
	}
	wg.Wait()

	if events.Load() == 0 {
		t.Fatal("no structure events under concurrent load")
	}
	ins := o.OpHist(core.OpInsert).Count()
	if ins != uint64(len(keys)) {
		t.Fatalf("insert histogram count = %d, want %d", ins, len(keys))
	}
	// Reading while writers are done but state is settled: snapshot works.
	if o.OpHist(core.OpGet).Count() == 0 {
		t.Fatal("no gets recorded")
	}
}

// TestExporterEndpoints spot-checks the Prometheus and JSON surfaces.
func TestExporterEndpoints(t *testing.T) {
	o := New()
	d, keys := loadedIndex(t, o, false, 60000)
	for _, k := range keys[:100] {
		d.Get(k)
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	prom := fetch(t, srv.URL+"/metrics")
	for _, want := range []string{
		`dytis_op_latency_nanoseconds{op="get",quantile="0.99"}`,
		`dytis_op_latency_nanoseconds_count{op="insert"} 60000`,
		`dytis_structure_events_total{kind="split"}`,
		`dytis_structure_events_total{kind="remap-failure"}`,
		`dytis_structure_events_total{kind="shrink"}`,
		"dytis_keys ",
		"dytis_memory_bytes ",
		"dytis_segments ",
		`dytis_maintenance_total{kind="split"}`,
		`dytis_maintenance_total{kind="shrink"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	for _, path := range []string{"/debug/vars", "/vars"} {
		body := fetch(t, srv.URL+path)
		var vars map[string]json.RawMessage
		if err := json.Unmarshal([]byte(body), &vars); err != nil {
			t.Fatalf("%s is not valid JSON: %v\n%s", path, err, body)
		}
		for _, key := range []string{"dytis.ops", "dytis.events", "dytis.stats", "dytis.keys", "dytis.memory_bytes"} {
			if _, ok := vars[key]; !ok {
				t.Errorf("%s missing key %q", path, key)
			}
		}
		var ops map[string]OpSnapshot
		if err := json.Unmarshal(vars["dytis.ops"], &ops); err != nil {
			t.Fatalf("dytis.ops malformed: %v", err)
		}
		if ops["insert"].Count != 60000 {
			t.Errorf("insert count in %s = %d, want 60000", path, ops["insert"].Count)
		}
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}
