package core

import (
	"sync/atomic"
	"time"

	"dytis/internal/kv"
)

// DyTIS is the Dynamic dataset Targeted Index Structure: an ordered index
// over uint64 keys that supports search, insert (upsert), delete, and range
// scans, with no bulk-load/training phase. See the package comment for the
// design; options follow §4.1 of the paper.
//
// With Options.Concurrent, all operations are safe for concurrent use via
// the two-level locking scheme of §3.4; otherwise the index is the paper's
// single-threaded no-lock variant.
type DyTIS struct {
	opts       Options
	suffixBits uint8
	obs        Observer      // nil when observability is disabled
	obsBatch   BatchObserver // obs's batched hook, nil if not implemented
	ehs        []*eh
	closed     atomic.Bool // set by Close
}

// New creates an empty DyTIS index.
func New(opts Options) *DyTIS {
	opts = opts.withDefaults()
	r := uint(opts.FirstLevelBits)
	d := &DyTIS{
		opts:       opts,
		suffixBits: uint8(64 - r),
		obs:        opts.Observer,
		ehs:        make([]*eh, 1<<r),
	}
	if ob, ok := opts.Observer.(BatchObserver); ok {
		d.obsBatch = ob
	}
	for i := range d.ehs {
		d.ehs[i] = newEH(uint64(i)<<d.suffixBits, d.suffixBits, &d.opts)
	}
	return d
}

// NewDefault creates a DyTIS index with the paper's default parameters
// (single-threaded).
func NewDefault() *DyTIS { return New(Options{}) }

func (d *DyTIS) ehOf(k uint64) *eh { return d.ehs[k>>d.suffixBits] }

// mustOpen panics when the index is closed: the legacy mutation paths have
// no error return, and silently applying (or dropping) a post-Close
// mutation would diverge the index from a write-ahead log in front of it.
// The panic message carries ErrClosed's text; batch paths return the error
// instead.
func (d *DyTIS) mustOpen(op string) {
	if d.closed.Load() {
		panic("dytis: " + op + ": " + ErrClosed.Error())
	}
}

// Insert stores or updates the value for key. It panics if the index has
// been closed (see Close; InsertBatch returns ErrClosed instead).
func (d *DyTIS) Insert(key, value uint64) {
	d.mustOpen("Insert")
	e := d.ehOf(key)
	if d.obs == nil {
		e.insert(key, value)
		return
	}
	t0 := time.Now()
	e.insert(key, value)
	d.obs.RecordOp(OpInsert, e.idx, time.Since(t0))
}

// Get returns the value for key and whether it exists.
func (d *DyTIS) Get(key uint64) (uint64, bool) {
	e := d.ehOf(key)
	if d.obs == nil {
		return e.get(key)
	}
	t0 := time.Now()
	v, ok := e.get(key)
	d.obs.RecordOp(OpGet, e.idx, time.Since(t0))
	return v, ok
}

// Delete removes key, reporting whether it was present. It panics if the
// index has been closed (see Close; DeleteBatch returns ErrClosed instead).
func (d *DyTIS) Delete(key uint64) bool {
	d.mustOpen("Delete")
	e := d.ehOf(key)
	if d.obs == nil {
		return e.delete(key)
	}
	t0 := time.Now()
	ok := e.delete(key)
	d.obs.RecordOp(OpDelete, e.idx, time.Since(t0))
	return ok
}

// Len returns the number of live keys.
func (d *DyTIS) Len() int {
	var n int64
	for _, e := range d.ehs {
		n += e.total.Load()
	}
	return int(n)
}

// Scan appends up to max pairs with key >= start, in ascending key order, to
// dst and returns the extended slice. It walks segment sibling chains within
// an EH and advances across first-level EH tables as ranges are exhausted.
// Under concurrency, the scan is not a point-in-time snapshot: each segment
// is read atomically (under its lock), but concurrent structural changes may
// hide keys inserted during the scan.
//
// Observability: a scan that crosses first-level EH tables records one
// per-shard OpScan span for each EH that contributed pairs (always including
// the starting EH, so empty scans are still counted), each with the time
// spent inside that EH — not the whole multi-EH latency against the starting
// key's shard.
func (d *DyTIS) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	if max <= 0 {
		return dst
	}
	first := int(start >> d.suffixBits)
	if d.obs == nil {
		for i := first; i < len(d.ehs); i++ {
			before := len(dst)
			dst = d.ehs[i].scan(start, max, dst)
			max -= len(dst) - before
			if max <= 0 {
				break
			}
		}
		return dst
	}
	for i := first; i < len(d.ehs); i++ {
		t0 := time.Now()
		before := len(dst)
		dst = d.ehs[i].scan(start, max, dst)
		took := len(dst) - before
		if took > 0 || i == first {
			d.obs.RecordOp(OpScan, i, time.Since(t0))
		}
		max -= took
		if max <= 0 {
			break
		}
	}
	return dst
}

// ScanFunc calls fn for every pair with key >= start, in ascending key
// order, until fn returns false. It is the zero-allocation visitor under
// Range and Cursor: pairs are passed straight out of the buckets with no
// intermediate []kv.KV buffer.
//
// In Concurrent mode fn runs while the current segment's read lock is held,
// so fn must return quickly and must not call back into the index (an
// Insert/Delete from inside fn can deadlock); the iteration observes each
// segment atomically but is not a point-in-time snapshot (same semantics as
// Scan, including the per-visited-EH OpScan attribution).
func (d *DyTIS) ScanFunc(start uint64, fn func(key, value uint64) bool) {
	first := int(start >> d.suffixBits)
	if d.obs == nil {
		for i := first; i < len(d.ehs); i++ {
			if !d.ehs[i].scanFunc(start, fn) {
				break
			}
		}
		return
	}
	visited := false
	wrapped := func(k, v uint64) bool {
		visited = true
		return fn(k, v)
	}
	for i := first; i < len(d.ehs); i++ {
		t0 := time.Now()
		visited = false
		more := d.ehs[i].scanFunc(start, wrapped)
		if visited || i == first {
			d.obs.RecordOp(OpScan, i, time.Since(t0))
		}
		if !more {
			break
		}
	}
}

// Range calls fn for every pair with key in [start, end], in ascending
// order, until fn returns false. It is ScanFunc with an end bound and shares
// its constraints: in Concurrent mode fn runs under the segment read lock
// and must not call back into the index.
func (d *DyTIS) Range(start, end uint64, fn func(key, value uint64) bool) {
	if end < start {
		return
	}
	d.ScanFunc(start, func(k, v uint64) bool {
		return k <= end && fn(k, v)
	})
}

// Stats aggregates the maintenance-operation counters of every EH table;
// Durations cover the same operations and feed the §4.3 insertion-breakdown
// experiment.
type Stats struct {
	Splits, Remaps, Expansions, Doublings, RemapFailures, Shrinks int64
	SplitNS, RemapNS, ExpandNS, DoubleNS, ShrinkNS                int64
	Segments, Buckets                                             int
	DirEntries                                                    int
	AdaptiveEHs                                                   int // EHs running with the raised Limit_seg
}

// Stats snapshots the maintenance counters. It is safe to call concurrently
// with operations, but the snapshot is not atomic across EHs.
func (d *DyTIS) Stats() Stats {
	var st Stats
	for _, e := range d.ehs {
		st.Splits += e.stats.splits.Load()
		st.Remaps += e.stats.remaps.Load()
		st.Expansions += e.stats.expansions.Load()
		st.Doublings += e.stats.doublings.Load()
		st.RemapFailures += e.stats.remapFails.Load()
		st.Shrinks += e.stats.shrinks.Load()
		st.SplitNS += e.stats.splitNS.Load()
		st.RemapNS += e.stats.remapNS.Load()
		st.ExpandNS += e.stats.expandNS.Load()
		st.DoubleNS += e.stats.doubleNS.Load()
		st.ShrinkNS += e.stats.shrinkNS.Load()
		if int(e.limitMult.Load()) != d.opts.SegLimitMult {
			st.AdaptiveEHs++
		}
		if e.conc {
			e.mu.RLock()
		}
		st.DirEntries += len(e.dir)
		e.forEachSegment(func(s *segment) {
			// e.mu excludes directory rewrites, but remap/expand rewrite a
			// segment's bucket geometry under only s.mu (insert drops the EH
			// lock before restructuring), so nb is only stable under s.mu.
			if e.conc {
				s.mu.RLock()
			}
			st.Segments++
			st.Buckets += s.nb
			if e.conc {
				s.mu.RUnlock()
			}
		})
		if e.conc {
			e.mu.RUnlock()
		}
	}
	return st
}

// MemoryFootprint estimates the index's heap usage in bytes: directory
// pointers plus per-segment key/value/occupancy arrays and metadata. It is
// used by the §4.3 memory-usage comparison.
func (d *DyTIS) MemoryFootprint() int64 {
	var b int64
	for _, e := range d.ehs {
		if e.conc {
			e.mu.RLock()
		}
		b += int64(len(e.dir)) * 8
		e.forEachSegment(func(s *segment) {
			// nb and cnt are rewritten by remap/expand under only s.mu; see
			// the matching lock in Stats.
			if e.conc {
				s.mu.RLock()
			}
			b += int64(s.nb*s.bcap)*16 + int64(s.nb)*2 + int64(len(s.cnt))*8 + 96
			if e.conc {
				s.mu.RUnlock()
			}
		})
		if e.conc {
			e.mu.RUnlock()
		}
	}
	return b
}

// checkInvariants validates directory run-tiling and every segment; used by
// tests. The run-tiling check (each segment owns exactly the aligned
// 2^(gd-ld) directory entries derived from its depth, and the runs tile the
// directory) is precisely the precondition of the stride walk that Stats,
// MemoryFootprint, and maxPair rely on to visit each segment once.
//
//dytis:nolockcheck
func (d *DyTIS) checkInvariants() error {
	for _, e := range d.ehs {
		for i := 0; i < len(e.dir); {
			s := e.dir[i]
			if s.ld > e.gd {
				return errf("segment ld=%d exceeds gd=%d", s.ld, e.gd)
			}
			span := 1 << (e.gd - s.ld)
			if i%span != 0 {
				return errf("segment run at dir[%d] not aligned to span %d", i, span)
			}
			for j := i; j < i+span; j++ {
				if e.dir[j] != s {
					return errf("segment run interrupted at dir[%d] (run started at %d, span %d)", j, i, span)
				}
			}
			if err := s.checkInvariants(); err != nil {
				return err
			}
			i += span
		}
	}
	return nil
}
