package core

import (
	"math/rand"
	"testing"
)

// segmentGroundTruth deduplicates segments by identity (pointer map), the
// walk Stats cannot afford on the hot read path but that is correct no
// matter how directory runs are arranged.
func segmentGroundTruth(d *DyTIS) (segments, buckets int, bytes int64) {
	for _, e := range d.ehs {
		seen := map[*segment]bool{}
		bytes += int64(len(e.dir)) * 8
		for _, s := range e.dir {
			if seen[s] {
				continue
			}
			seen[s] = true
			segments++
			buckets += s.nb
			bytes += int64(s.nb*s.bcap)*16 + int64(s.nb)*2 + int64(len(s.cnt))*8 + 96
		}
	}
	return
}

// TestStatsSegmentDedup is the regression test for the duplicate-segment
// walk: Stats and MemoryFootprint used to dedup directory entries by
// comparing with the previous entry, which double-counts any segment whose
// run is interrupted; they now stride over each segment's aligned
// 2^(gd-ld) run. Drive workloads heavy in doublings, splits, remaps and
// expansions interleaved with deletes, and require exact agreement with
// identity-based ground truth throughout.
func TestStatsSegmentDedup(t *testing.T) {
	workloads := []struct {
		name string
		gen  func(i int) uint64
	}{
		// Narrow clusters force repeated directory doubling.
		{"clustered", func(i int) uint64 { return uint64(i/64)<<30 | uint64(i%64) }},
		// Dense ascending keys drive splits and remaps in one EH.
		{"ascending", func(i int) uint64 { return uint64(i) * 17 }},
		// Random keys spread maintenance across all EHs.
		{"random", func(i int) uint64 { return rand.New(rand.NewSource(int64(i))).Uint64() }},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			d := New(smallOpts())
			for i := 0; i < 40000; i++ {
				d.Insert(w.gen(i), uint64(i))
				if i%7 == 0 {
					d.Delete(w.gen(i / 2))
				}
				if i%5000 == 4999 {
					checkStatsAgainstGroundTruth(t, d, w.name, i)
				}
			}
			checkStatsAgainstGroundTruth(t, d, w.name, -1)
			if err := d.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			st := d.Stats()
			if st.Doublings == 0 && st.Splits == 0 {
				t.Fatalf("%s: no structural activity, test is vacuous (%+v)", w.name, st)
			}
		})
	}
}

func checkStatsAgainstGroundTruth(t *testing.T, d *DyTIS, name string, step int) {
	t.Helper()
	segs, buckets, bytes := segmentGroundTruth(d)
	st := d.Stats()
	if st.Segments != segs || st.Buckets != buckets {
		t.Fatalf("%s (step %d): Stats counted %d segments / %d buckets, ground truth %d / %d",
			name, step, st.Segments, st.Buckets, segs, buckets)
	}
	if got := d.MemoryFootprint(); got != bytes {
		t.Fatalf("%s (step %d): MemoryFootprint = %d, ground truth %d", name, step, got, bytes)
	}
}

// TestStatsAfterDoublingInterleavedRuns pins the exact scenario from the
// issue: directory doubling interleaving a segment's run with its newly
// split neighbors. The stride walk must count each distinct segment once.
func TestStatsAfterDoublingInterleavedRuns(t *testing.T) {
	d := New(Options{FirstLevelBits: 2, BucketEntries: 4, StartDepth: 8})
	// With remapping pushed past reachable depths, every overflow splits or
	// doubles, churning directory runs of mixed local depths.
	for i := 0; i < 5000; i++ {
		d.Insert(uint64(i)<<20|uint64(i%3), uint64(i))
	}
	segs, buckets, _ := segmentGroundTruth(d)
	st := d.Stats()
	if st.Segments != segs || st.Buckets != buckets {
		t.Fatalf("Stats counted %d segments / %d buckets, ground truth %d / %d",
			st.Segments, st.Buckets, segs, buckets)
	}
	if st.Doublings == 0 {
		t.Fatalf("no doublings; scenario not exercised (%+v)", st)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
