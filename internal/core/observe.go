package core

import "time"

// Op identifies a public index operation for latency observation.
type Op uint8

const (
	OpGet Op = iota
	OpInsert
	OpDelete
	OpScan

	// NumOps is the number of observable operations; valid Op values are
	// 0..NumOps-1, so it can size per-op arrays.
	NumOps
)

func (op Op) String() string {
	switch op {
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	}
	return "unknown"
}

// EventKind identifies one of the structure-maintenance operations. Segment
// split and directory doubling are the basic Extendible-Hashing schemes of
// Algorithm 1 (high utilization, ld == gd doubles, ld < gd splits), remapping
// and expansion are the §3.3 CDF-adjustment schemes, remap-failure records a
// remap that could not grow within Limit_seg and fell through to the
// structural path, and shrink is the delete-path inverse of remapping
// (§3.3 "Deletion"): a rebuild onto fewer buckets when utilization collapses.
type EventKind uint8

const (
	EvSplit EventKind = iota
	EvRemap
	EvExpand
	EvDouble
	EvRemapFailure
	EvShrink

	// NumEventKinds is the number of event kinds; valid EventKind values are
	// 0..NumEventKinds-1, so it can size per-kind arrays.
	NumEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvSplit:
		return "split"
	case EvRemap:
		return "remap"
	case EvExpand:
		return "expand"
	case EvDouble:
		return "double"
	case EvRemapFailure:
		return "remap-failure"
	case EvShrink:
		return "shrink"
	}
	return "unknown"
}

// StructureEvent describes one structure-maintenance operation as it
// completes. Events are emitted with exactly the same cardinality as the
// Stats counters: every Stats increment fires one event.
type StructureEvent struct {
	// Kind is the maintenance operation that ran.
	Kind EventKind
	// EH is the first-level table index (the key's top R bits).
	EH int
	// SegmentBase identifies the segment the operation targeted: the first
	// key of its covered range. Together with LocalDepth it names the
	// segment uniquely at the time of the event.
	SegmentBase uint64
	// LocalDepth is the segment's local depth when the event fired (for a
	// split, the pre-split depth; the children are one deeper).
	LocalDepth uint8
	// Duration is the wall time the operation took, 0 for EvRemapFailure
	// (the failed attempt's cost is not separately tracked by Stats either).
	Duration time.Duration
}

// Observer receives per-operation latencies and structure events from an
// index. Implementations must be safe for concurrent use; internal/obs
// provides the standard one (sharded histograms + subscriber fan-out).
//
// RecordOp is on the hot path of every operation: shard is the first-level
// EH index of the operation's (start) key, letting implementations keep
// per-shard state and avoid contended atomics. StructureEvent is called from
// inside the maintenance paths — in Concurrent mode while the EH and/or
// segment locks are held — so implementations must return quickly and must
// not call back into the index.
type Observer interface {
	RecordOp(op Op, shard int, d time.Duration)
	StructureEvent(ev StructureEvent)
}

// BatchObserver is optionally implemented by an Observer that can book a
// whole batch of same-kind operations in one call: n operations against the
// given shard took total wall time altogether. The batch entry points
// (GetBatch, InsertBatch, DeleteBatch) time the batch once and dispatch once,
// so per-operation observer overhead disappears from the batched hot path;
// implementations typically record n samples of total/n. Observers that do
// not implement it fall back to n RecordOp calls with the mean latency.
type BatchObserver interface {
	RecordBatch(op Op, shard int, n int, total time.Duration)
}

// Detacher is optionally implemented by an Observer that holds a reference
// back to the index (e.g. to serve its Stats over HTTP); DyTIS.Close calls
// DetachIndex(d) so a closed index can be collected and is no longer served.
type Detacher interface {
	DetachIndex(src any)
}
