package core_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dytis/internal/core"
)

// TestClosedMutations pins the post-Close contract: reads keep working on
// the surviving in-memory structure, batch mutations return ErrClosed
// without applying anything, and the legacy error-less mutation paths
// (Insert, Delete, LoadSorted) panic with a message carrying ErrClosed's
// text. With a write-ahead log attached in front of the index, a silently
// accepted post-Close mutation would diverge log from index — hence loud.
func TestClosedMutations(t *testing.T) {
	d := core.New(core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2})
	for k := uint64(0); k < 100; k++ {
		d.Insert(k<<40, k)
	}
	lenBefore := d.Len()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reads survive.
	if v, ok := d.Get(1 << 40); !ok || v != 1 {
		t.Fatalf("Get after Close = %d,%v want 1,true", v, ok)
	}
	if got := len(d.Scan(0, 1000, nil)); got != lenBefore {
		t.Fatalf("Scan after Close returned %d pairs, want %d", got, lenBefore)
	}
	if vals, found := d.GetBatch([]uint64{1 << 40}, nil, nil); !found[0] || vals[0] != 1 {
		t.Fatalf("GetBatch after Close = %v,%v", vals, found)
	}

	// Batch mutations fail typed and apply nothing.
	if err := d.InsertBatch([]uint64{42}, []uint64{42}); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("InsertBatch after Close = %v, want ErrClosed", err)
	}
	if _, ok := d.Get(42); ok {
		t.Fatal("InsertBatch after Close applied its insert")
	}
	found, err := d.DeleteBatch([]uint64{1 << 40}, nil)
	if !errors.Is(err, core.ErrClosed) {
		t.Fatalf("DeleteBatch after Close = %v, want ErrClosed", err)
	}
	if len(found) != 0 {
		t.Fatalf("DeleteBatch after Close extended found: %v", found)
	}
	if _, ok := d.Get(1 << 40); !ok {
		t.Fatal("DeleteBatch after Close applied its delete")
	}

	// Legacy paths panic, naming the operation and the closed condition.
	for _, tc := range []struct {
		name string
		op   func()
	}{
		{"Insert", func() { d.Insert(7, 7) }},
		{"Delete", func() { d.Delete(1 << 40) }},
		{"LoadSorted", func() { d.LoadSorted([]uint64{1, 2}, []uint64{1, 2}) }},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s after Close did not panic", tc.name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, tc.name) || !strings.Contains(msg, core.ErrClosed.Error()) {
					t.Fatalf("%s after Close panicked with %v, want the op name and ErrClosed text", tc.name, r)
				}
			}()
			tc.op()
		}()
	}
	if d.Len() != lenBefore {
		t.Fatalf("Len changed across post-Close mutations: %d -> %d", lenBefore, d.Len())
	}

	// ReadSnapshot would replace the contents — it is a mutation and errors.
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil { // snapshotting a closed index is a read
		t.Fatalf("WriteSnapshot after Close: %v", err)
	}
	if err := d.ReadSnapshot(&buf); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("ReadSnapshot after Close = %v, want ErrClosed", err)
	}
}
