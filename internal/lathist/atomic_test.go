package lathist

import (
	"sync"
	"testing"
	"time"
)

// TestAtomicHistMatchesHist records the same stream into both histogram
// flavors and checks every exported statistic agrees.
func TestAtomicHistMatchesHist(t *testing.T) {
	var a AtomicHist
	var h Hist
	durs := []time.Duration{0, 1, 31, 32, 33, 100, 1000, 12345, 1 << 30, -5}
	for _, d := range durs {
		a.Record(d)
		h.Record(d)
	}
	var got Hist
	a.AddTo(&got)
	if got.Count() != h.Count() || got.Sum() != h.Sum() {
		t.Fatalf("count/sum mismatch: got n=%d sum=%d, want n=%d sum=%d",
			got.Count(), got.Sum(), h.Count(), h.Sum())
	}
	if got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("min/max mismatch: got [%v,%v], want [%v,%v]", got.Min(), got.Max(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Fatalf("quantile %g mismatch: %v vs %v", q, got.Quantile(q), h.Quantile(q))
		}
	}
}

// TestAtomicHistZeroMin checks the min+1 encoding represents a true zero.
func TestAtomicHistZeroMin(t *testing.T) {
	var a AtomicHist
	a.Record(5)
	a.Record(0)
	var got Hist
	a.AddTo(&got)
	if got.Min() != 0 {
		t.Fatalf("min = %v, want 0", got.Min())
	}
}

// TestAtomicHistEmptyAddTo checks an empty shard leaves the destination
// untouched (in particular its min).
func TestAtomicHistEmptyAddTo(t *testing.T) {
	var a AtomicHist
	var dst Hist
	dst.Record(7)
	a.AddTo(&dst)
	if dst.Count() != 1 || dst.Min() != 7 {
		t.Fatalf("empty AddTo changed dst: n=%d min=%v", dst.Count(), dst.Min())
	}
}

// TestAtomicHistConcurrent hammers one shard from many goroutines; run with
// -race this verifies Record is data-race free, and the final count must be
// exact because every path is atomic.
func TestAtomicHistConcurrent(t *testing.T) {
	var a AtomicHist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Record(time.Duration(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	var got Hist
	a.AddTo(&got)
	if got.Count() != workers*per {
		t.Fatalf("count = %d, want %d", got.Count(), workers*per)
	}
	if got.Min() != 0 || got.Max() != workers*per-1 {
		t.Fatalf("min/max = %v/%v, want 0/%d", got.Min(), got.Max(), workers*per-1)
	}
}
