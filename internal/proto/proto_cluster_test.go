package proto

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestClusterRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpShardInfo},
		{ID: 2, Op: OpMapGet},
		{ID: 3, Op: OpMapSet, Lo: 0, Hi: math.MaxUint64, MapBlob: []byte{1, 2, 3, 4}},
		{ID: 4, Op: OpHandoverStart, Lo: 100, Hi: 200, Addr: "127.0.0.1:7071"},
		{ID: 5, Op: OpHandoverStatus},
		{ID: 6, Op: OpImportStart, Lo: 100, Hi: 200},
		{ID: 7, Op: OpImportBatch, Keys: []uint64{1, 2}, Vals: []uint64{10, 20}},
		{ID: 8, Op: OpImportBatch}, // empty page is legal
		{ID: 9, Op: OpImportEnd, Commit: true},
		{ID: 10, Op: OpImportEnd, Commit: false},
		{ID: 11, Op: OpMirror, Del: false, Key: 7, Val: 9},
		{ID: 12, Op: OpMirror, Del: true, Key: 7},
		{ID: 16, Op: OpHandoverResume},
		{ID: 17, Op: OpHandoverAbort},
		{ID: 18, Op: OpImportResume, Lo: 100, Hi: 200},
		// Epoch flag composes with any opcode and with the deadline flag.
		{ID: 13, Op: OpGet, Key: 42, Epoch: 3},
		{ID: 14, Op: OpInsert, Key: 1, Val: 2, Epoch: 1, TimeoutMS: 250},
		{ID: 15, Op: OpScanStart, Key: 5, ScanMax: 100, Max: 64, Credits: 4, Epoch: math.MaxUint64},
	}
	for _, want := range cases {
		got := roundTripReq(t, &want)
		normReq(&want)
		normReq(got)
		if len(want.MapBlob) == 0 {
			want.MapBlob = nil
		}
		if len(got.MapBlob) == 0 {
			got.MapBlob = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("round trip %v: got %+v want %+v", want.Op, *got, want)
		}
	}
}

func TestClusterResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Op: OpShardInfo, Lo: 0, Hi: math.MaxUint64, Epoch: 9, State: 1},
		{ID: 2, Op: OpMapGet, MapBlob: []byte{5, 6, 7}},
		{ID: 3, Op: OpMapSet},
		{ID: 4, Op: OpHandoverStart},
		{ID: 5, Op: OpHandoverStatus, State: 2, Copied: 1 << 30, Mirrored: 17,
			Retries: 4, Resumes: 1, Watermark: 1 << 40, Lo: 100, Hi: 200, Addr: "127.0.0.1:7071"},
		{ID: 5, Op: OpHandoverStatus}, // no handover: empty addr, all-zero counters
		{ID: 6, Op: OpImportStart},
		{ID: 7, Op: OpImportBatch, Applied: 12345},
		{ID: 8, Op: OpImportEnd},
		{ID: 9, Op: OpMirror},
		{ID: 10, Op: OpHandoverResume},
		{ID: 11, Op: OpHandoverAbort},
		{ID: 12, Op: OpImportResume, Fresh: true, Applied: 777},
		{ID: 13, Op: OpImportResume, Fresh: false},
	}
	for _, ver := range []uint8{Version1, Version2} {
		for _, want := range cases {
			frame, err := AppendResponseV(nil, &want, ver)
			if err != nil {
				t.Fatalf("v%d AppendResponseV(%v): %v", ver, want.Op, err)
			}
			var got Response
			if err := DecodeResponseV(frame[4:], &got, ver); err != nil {
				t.Fatalf("v%d DecodeResponseV(%v): %v", ver, want.Op, err)
			}
			normResp(&want)
			normResp(&got)
			if len(want.MapBlob) == 0 {
				want.MapBlob = nil
			}
			if len(got.MapBlob) == 0 {
				got.MapBlob = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("v%d round trip %v: got %+v want %+v", ver, want.Op, got, want)
			}
		}
	}
}

// TestWrongShardRedirectPayload pins the version fork: at v2 a WrongShard
// response carries the server's encoded map before the message, at v1 the
// message only.
func TestWrongShardRedirectPayload(t *testing.T) {
	want := Response{
		ID: 1, Op: OpGet, Status: StatusWrongShard,
		MapBlob: []byte{0xAA, 0xBB, 0xCC}, Msg: "key moved",
	}
	frame, err := AppendResponseV(nil, &want, Version2)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := DecodeResponseV(frame[4:], &got, Version2); err != nil {
		t.Fatal(err)
	}
	if string(got.MapBlob) != string(want.MapBlob) || got.Msg != want.Msg {
		t.Fatalf("v2 redirect: got blob %x msg %q", got.MapBlob, got.Msg)
	}

	// v1 drops the blob: the whole remainder is the message.
	frame, err = AppendResponseV(nil, &want, Version1)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeResponseV(frame[4:], &got, Version1); err != nil {
		t.Fatal(err)
	}
	if len(got.MapBlob) != 0 || got.Msg != want.Msg {
		t.Fatalf("v1 redirect: got blob %x msg %q", got.MapBlob, got.Msg)
	}

	// An empty blob at v2 is legal (a node may not have a map yet).
	frame, err = AppendResponseV(nil, &Response{ID: 2, Op: OpGet, Status: StatusWrongShard, Msg: "m"}, Version2)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeResponseV(frame[4:], &got, Version2); err != nil {
		t.Fatal(err)
	}
	if len(got.MapBlob) != 0 || got.Msg != "m" {
		t.Fatalf("v2 empty-blob redirect: got blob %x msg %q", got.MapBlob, got.Msg)
	}

	// A lying blob length cannot over-read into the message or beyond.
	body, err := AppendResponseV(nil, &want, Version2)
	if err != nil {
		t.Fatal(err)
	}
	body = body[4:]
	// status is at offset 9; blob length is the next 4 bytes.
	body[10], body[11], body[12], body[13] = 0xFF, 0xFF, 0xFF, 0xFF
	if err := DecodeResponseV(body, &got, Version2); !errors.Is(err, ErrLimit) {
		t.Fatalf("lying blob length: got %v, want ErrLimit", err)
	}
}

func TestClusterRequestLimits(t *testing.T) {
	if _, err := AppendRequest(nil, &Request{Op: OpHandoverStart, Addr: ""}); !errors.Is(err, ErrLimit) {
		t.Errorf("empty addr: got %v, want ErrLimit", err)
	}
	long := strings.Repeat("x", MaxAddr+1)
	if _, err := AppendRequest(nil, &Request{Op: OpHandoverStart, Addr: long}); !errors.Is(err, ErrLimit) {
		t.Errorf("oversized addr: got %v, want ErrLimit", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpMapSet}); !errors.Is(err, ErrLimit) {
		t.Errorf("empty map blob: got %v, want ErrLimit", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpMapSet, MapBlob: make([]byte, MaxMapBlob+1)}); !errors.Is(err, ErrLimit) {
		t.Errorf("oversized map blob: got %v, want ErrLimit", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpImportBatch, Keys: []uint64{1}}); err == nil {
		t.Error("import batch keys/vals mismatch not rejected")
	}
}

// TestClusterDecodeCanonicality: every invalid byte spelling the encoder can
// never emit must be rejected, keeping one-encoding-per-request for the fuzz
// canonicality property.
func TestClusterDecodeCanonicality(t *testing.T) {
	valid := func(r *Request) []byte {
		frame, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		return frame[4:]
	}

	// Commit/del bytes beyond 1 are second spellings of the same request.
	b := valid(&Request{ID: 1, Op: OpImportEnd, Commit: true})
	b[9] = 2
	var req Request
	if err := DecodeRequest(b, &req); err == nil {
		t.Error("import-end commit byte 2 accepted")
	}
	b = valid(&Request{ID: 1, Op: OpMirror, Del: true, Key: 1, Val: 0})
	b[9] = 7
	if err := DecodeRequest(b, &req); err == nil {
		t.Error("mirror del byte 7 accepted")
	}

	// A zero epoch under FlagEpoch is the flag misapplied.
	b = valid(&Request{ID: 1, Op: OpGet, Key: 5, Epoch: 9})
	for i := 0; i < 8; i++ {
		b[9+i] = 0
	}
	if err := DecodeRequest(b, &req); err == nil {
		t.Error("zero epoch under FlagEpoch accepted")
	}

	// Epoch field truncation surfaces as ErrTruncated.
	b = valid(&Request{ID: 1, Op: OpPing, Epoch: 9})
	if err := DecodeRequest(b[:12], &req); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated epoch: got %v, want ErrTruncated", err)
	}
}
