package core

import (
	"errors"
	"time"
)

// ErrClosed is returned (batch mutation paths) or carried by the panic
// (legacy single-op mutation paths) when an operation that would mutate the
// index arrives after Close. Reads of a closed index remain valid — the
// in-memory structure survives Close — but a mutation accepted after Close
// would silently diverge any write-ahead log attached in front of the index
// from the index itself, so mutations fail loudly instead.
var ErrClosed = errors.New("dytis: index is closed")

// Batch entry points. A networked or otherwise batching caller that already
// holds many operations amortizes two per-op costs by using these: the
// option/observer dispatch in the public methods (one time.Now pair and one
// observer call per batch instead of per op) and, for remote callers, the
// per-op request round trip. The index work itself is identical to calling
// the single-op methods in a loop — batches are not atomic: under
// concurrency, other writers may interleave between the batch's operations.
//
// Observability: a batch is booked as n samples of its mean per-op latency
// (via BatchObserver when the observer implements it), attributed to the
// first key's first-level EH shard — per-key shard attribution is the price
// of skipping per-op dispatch.

// GetBatch looks up every key of keys, appending each result to vals and
// found (position i of the appended region corresponds to keys[i]), and
// returns the extended slices. Passing recycled slices avoids allocation.
func (d *DyTIS) GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool) {
	if len(keys) == 0 {
		return vals, found
	}
	if d.obs == nil {
		for _, k := range keys {
			v, ok := d.ehOf(k).get(k)
			vals = append(vals, v)
			found = append(found, ok)
		}
		return vals, found
	}
	t0 := time.Now()
	for _, k := range keys {
		v, ok := d.ehOf(k).get(k)
		vals = append(vals, v)
		found = append(found, ok)
	}
	d.recordBatch(OpGet, d.ehOf(keys[0]).idx, len(keys), time.Since(t0))
	return vals, found
}

// InsertBatch stores or updates vals[i] under keys[i] for every i. It panics
// if the slices differ in length, and returns ErrClosed (applying nothing)
// once Close has been called.
func (d *DyTIS) InsertBatch(keys, vals []uint64) error {
	if len(keys) != len(vals) {
		panic("dytis: InsertBatch slice length mismatch")
	}
	if d.closed.Load() {
		return ErrClosed
	}
	if len(keys) == 0 {
		return nil
	}
	if d.obs == nil {
		for i, k := range keys {
			d.ehOf(k).insert(k, vals[i])
		}
		return nil
	}
	t0 := time.Now()
	for i, k := range keys {
		d.ehOf(k).insert(k, vals[i])
	}
	d.recordBatch(OpInsert, d.ehOf(keys[0]).idx, len(keys), time.Since(t0))
	return nil
}

// DeleteBatch removes every key of keys, appending to found whether each was
// present, and returns the extended slice. After Close it returns found
// unextended and ErrClosed, applying nothing.
func (d *DyTIS) DeleteBatch(keys []uint64, found []bool) ([]bool, error) {
	if d.closed.Load() {
		return found, ErrClosed
	}
	if len(keys) == 0 {
		return found, nil
	}
	if d.obs == nil {
		for _, k := range keys {
			found = append(found, d.ehOf(k).delete(k))
		}
		return found, nil
	}
	t0 := time.Now()
	for _, k := range keys {
		found = append(found, d.ehOf(k).delete(k))
	}
	d.recordBatch(OpDelete, d.ehOf(keys[0]).idx, len(keys), time.Since(t0))
	return found, nil
}

// recordBatch books n operations taking total altogether, through the
// observer's batched hook when it has one.
func (d *DyTIS) recordBatch(op Op, shard, n int, total time.Duration) {
	if d.obsBatch != nil {
		d.obsBatch.RecordBatch(op, shard, n, total)
		return
	}
	mean := total / time.Duration(n)
	for i := 0; i < n; i++ {
		d.obs.RecordOp(op, shard, mean)
	}
}

// Close shuts the index down as an observable entity: it detaches the index
// from its observer (so HTTP exporters stop serving its Stats and the index
// can be collected) and drops the observer reference so no further latencies
// or structure events are recorded. The in-memory structure itself needs no
// flushing and remains readable; Close is idempotent and always returns nil.
//
// After Close, mutations fail loudly instead of silently diverging the
// index from any write-ahead log in front of it: the batch entry points
// return ErrClosed, and the legacy error-less paths (Insert, Delete,
// LoadSorted) panic with a message wrapping the same condition.
//
// Close must not race with in-flight operations: quiesce callers first (a
// server drains its connections before closing the index it serves).
func (d *DyTIS) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	if det, ok := d.obs.(Detacher); ok {
		det.DetachIndex(d)
	}
	d.obs = nil
	d.obsBatch = nil
	return nil
}

// Closed reports whether Close has been called.
func (d *DyTIS) Closed() bool { return d.closed.Load() }
