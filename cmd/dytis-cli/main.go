// Command dytis-cli is an interactive shell around a DyTIS index: load
// datasets (generated or CSV), run point/range operations, and inspect the
// structure as it adapts. Useful for exploring how the index reacts to
// different key patterns.
//
// Usage:
//
//	dytis-cli [-concurrent]
//
// Commands (also: `help`):
//
//	put <key> <value>      get <key>        del <key>
//	scan <start> <n>       range <lo> <hi>  min | max
//	gen <dataset> <n>      load <file.csv>  stats | len | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dytis"
	"dytis/internal/datasets"
)

var concurrentFlag = flag.Bool("concurrent", false, "use the thread-safe variant")

const helpText = `commands:
  put <key> <value>    insert or update a pair
  get <key>            point lookup
  del <key>            delete a key
  scan <start> <n>     first n pairs with key >= start
  range <lo> <hi>      count pairs in [lo, hi]
  min | max            smallest / largest pair
  gen <dataset> <n>    insert n generated keys (MM|ML|RM|RL|TX|Uniform|...)
  load <file>          insert keys from a CSV (one key per line)
  stats                structure statistics
  len                  number of live keys
  help                 this text
  quit                 exit`

func main() {
	flag.Parse()
	var opts []dytis.Option
	if *concurrentFlag {
		opts = append(opts, dytis.WithConcurrent())
	}
	idx := dytis.New(opts...)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("dytis-cli — type 'help' for commands")
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if err := run(idx, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func run(idx *dytis.Index, fields []string) error {
	arg := func(i int) (uint64, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("missing argument %d", i)
		}
		return strconv.ParseUint(fields[i], 10, 64)
	}
	switch fields[0] {
	case "help":
		fmt.Println(helpText)
	case "quit", "exit":
		return errQuit
	case "put":
		k, err := arg(1)
		if err != nil {
			return err
		}
		v, err := arg(2)
		if err != nil {
			return err
		}
		idx.Insert(k, v)
	case "get":
		k, err := arg(1)
		if err != nil {
			return err
		}
		if v, ok := idx.Get(k); ok {
			fmt.Println(v)
		} else {
			fmt.Println("(not found)")
		}
	case "del":
		k, err := arg(1)
		if err != nil {
			return err
		}
		fmt.Println(idx.Delete(k))
	case "scan":
		k, err := arg(1)
		if err != nil {
			return err
		}
		n, err := arg(2)
		if err != nil {
			return err
		}
		for _, p := range idx.Scan(k, int(n), nil) {
			fmt.Printf("%d -> %d\n", p.Key, p.Value)
		}
	case "range":
		lo, err := arg(1)
		if err != nil {
			return err
		}
		hi, err := arg(2)
		if err != nil {
			return err
		}
		n := 0
		idx.Range(lo, hi, func(k, v uint64) bool { n++; return true })
		fmt.Printf("%d pairs in [%d, %d]\n", n, lo, hi)
	case "min":
		if p, ok := idx.Min(); ok {
			fmt.Printf("%d -> %d\n", p.Key, p.Value)
		} else {
			fmt.Println("(empty)")
		}
	case "max":
		if p, ok := idx.Max(); ok {
			fmt.Printf("%d -> %d\n", p.Key, p.Value)
		} else {
			fmt.Println("(empty)")
		}
	case "gen":
		if len(fields) < 3 {
			return fmt.Errorf("usage: gen <dataset> <n>")
		}
		spec, ok := datasets.ByName(fields[1])
		if !ok {
			return fmt.Errorf("unknown dataset %q", fields[1])
		}
		n, err := arg(2)
		if err != nil {
			return err
		}
		t0 := time.Now()
		for i, k := range spec.Gen(int(n), 1) {
			idx.Insert(k, uint64(i))
		}
		fmt.Printf("inserted %d %s keys in %v\n", n, spec.Name, time.Since(t0))
	case "load":
		if len(fields) < 2 {
			return fmt.Errorf("usage: load <file>")
		}
		f, err := os.Open(fields[1])
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		n := 0
		t0 := time.Now()
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			k, err := strconv.ParseUint(strings.Split(line, ",")[0], 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: %w", n+1, err)
			}
			idx.Insert(k, uint64(n))
			n++
		}
		if err := sc.Err(); err != nil {
			return err
		}
		fmt.Printf("inserted %d keys in %v\n", n, time.Since(t0))
	case "len":
		fmt.Println(idx.Len())
	case "stats":
		st := idx.Stats()
		fmt.Printf("keys:        %d\n", idx.Len())
		fmt.Printf("segments:    %d\n", st.Segments)
		fmt.Printf("buckets:     %d\n", st.Buckets)
		fmt.Printf("dir entries: %d\n", st.DirEntries)
		fmt.Printf("splits:      %d\n", st.Splits)
		fmt.Printf("remaps:      %d (failed: %d)\n", st.Remaps, st.RemapFailures)
		fmt.Printf("expansions:  %d\n", st.Expansions)
		fmt.Printf("doublings:   %d\n", st.Doublings)
		fmt.Printf("adaptive EHs:%d\n", st.AdaptiveEHs)
		fmt.Printf("memory est.: %.1f MB\n", float64(idx.MemoryFootprint())/1e6)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
	return nil
}
