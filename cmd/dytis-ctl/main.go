// Command dytis-ctl administers a sharded dytis cluster: it creates the
// initial shard map, inspects per-server state, and drives live range
// rebalancing (handover) between shard servers.
//
// Usage:
//
//	dytis-ctl create -addrs :7071,:7072,:7073
//	    Build the epoch-1 uniform map over the listed servers (each must be
//	    running with a matching -shard i/n range) and install it on all.
//
//	dytis-ctl map -seed :7071
//	    Fetch and print the current shard map.
//
//	dytis-ctl status -addrs :7071,:7072,:7073
//	    Print each server's owned range, epoch, and handover state.
//
//	dytis-ctl rebalance -seed :7071 -lo 0x4000000000000000 -hi 0x7fffffffffffffff -to :7074
//	    Live-move [lo, hi] to the server at -to: bulk copy, double-write
//	    mirror, then cut over (source de-owns first, target granted, rest
//	    informed). The moved range must lie within one current shard; the
//	    target must be a fresh server (-shard none) or the owner of an
//	    adjacent range. A handover interrupted by transient faults is
//	    resumed automatically (bounded) before the command gives up.
//
//	dytis-ctl rebalance -seed :7071 -resume :7072
//	    Pick up the suspended (or orphaned) handover on the source server
//	    at -resume: replay journaled writes, continue the bulk copy from
//	    its watermark, and cut over.
//
//	dytis-ctl rebalance -seed :7071 -abort :7072
//	    Abandon the handover on the source server at -abort, scrubbing the
//	    partial copy from its target. The shard map is untouched.
//
// Every command exits 0 on success, 1 on failure, with errors on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dytis/client"
	"dytis/internal/cluster"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = cmdCreate(args)
	case "map":
		err = cmdMap(args)
	case "status":
		err = cmdStatus(args)
	case "rebalance":
		err = cmdRebalance(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "dytis-ctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dytis-ctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dytis-ctl <command> [flags]

commands:
  create     -addrs a,b,c [-timeout d]        install the initial uniform shard map
  map        -seed addr   [-timeout d]        print the current shard map
  status     -addrs a,b,c [-timeout d]        print each server's shard state
  rebalance  -seed addr -lo k -hi k -to addr  live-move [lo, hi] to another server
  rebalance  -seed addr -resume addr          resume a suspended handover through cutover
  rebalance  -seed addr -abort addr           abandon a handover, scrubbing its target`)
}

// withTimeout attaches the -timeout flag's budget to a fresh context.
func withTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func splitAddrs(s string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-addrs: no addresses")
	}
	return addrs, nil
}

// parseKey accepts decimal or 0x-prefixed hex.
func parseKey(name, s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("%s is required", name)
	}
	k, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("%s %q: %w", name, s, err)
	}
	return k, nil
}

func cmdCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	addrsFlag := fs.String("addrs", "", "comma-separated shard server addresses, in key-range order")
	timeout := fs.Duration("timeout", 10*time.Second, "total command budget")
	fs.Parse(args)
	addrs, err := splitAddrs(*addrsFlag)
	if err != nil {
		return err
	}
	m, err := cluster.Uniform(1, addrs)
	if err != nil {
		return err
	}
	blob := m.Encode()
	ctx, cancel := withTimeout(*timeout)
	defer cancel()
	for i, s := range m.Shards {
		c, err := client.Dial(s.Addr)
		if err != nil {
			return fmt.Errorf("shard %d at %s: %w", i, s.Addr, err)
		}
		err = c.RequireCluster(ctx)
		if err == nil {
			err = c.SetShardMap(ctx, s.Lo, s.Hi, blob)
		}
		c.Close()
		if err != nil {
			return fmt.Errorf("installing map on shard %d at %s: %w", i, s.Addr, err)
		}
		fmt.Printf("shard %d  [%#016x, %#016x]  %s  installed\n", i, s.Lo, s.Hi, s.Addr)
	}
	fmt.Printf("shard map epoch %d installed on %d servers\n", m.Epoch, len(m.Shards))
	return nil
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	seed := fs.String("seed", "", "any shard server address")
	timeout := fs.Duration("timeout", 10*time.Second, "total command budget")
	fs.Parse(args)
	if *seed == "" {
		return fmt.Errorf("-seed is required")
	}
	c, err := client.Dial(*seed)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := withTimeout(*timeout)
	defer cancel()
	blob, err := c.ShardMap(ctx)
	if err != nil {
		return err
	}
	m, err := cluster.DecodeMap(blob)
	if err != nil {
		return err
	}
	printMap(m)
	return nil
}

func printMap(m *cluster.Map) {
	fmt.Printf("epoch %d, %d shard(s)\n", m.Epoch, len(m.Shards))
	for i, s := range m.Shards {
		fmt.Printf("  %3d  [%#016x, %#016x]  %s\n", i, s.Lo, s.Hi, s.Addr)
	}
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addrsFlag := fs.String("addrs", "", "comma-separated shard server addresses")
	timeout := fs.Duration("timeout", 10*time.Second, "total command budget")
	fs.Parse(args)
	addrs, err := splitAddrs(*addrsFlag)
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()
	for _, addr := range addrs {
		c, err := client.Dial(addr)
		if err != nil {
			fmt.Printf("%-20s unreachable: %v\n", addr, err)
			continue
		}
		info, err := c.ShardInfo(ctx)
		var n int
		if err == nil {
			n, err = c.Len(ctx)
		}
		var ho client.HandoverProgress
		if err == nil && info.State != cluster.HandoverNone {
			// Best-effort detail: a node that just reported its state can
			// still race a concurrent abort clearing the handover.
			ho, _ = c.HandoverStatus(ctx)
		}
		c.Close()
		if err != nil {
			fmt.Printf("%-20s error: %v\n", addr, err)
			continue
		}
		owned := fmt.Sprintf("[%#016x, %#016x]", info.Lo, info.Hi)
		if info.Lo > info.Hi {
			owned = "(nothing)"
		}
		fmt.Printf("%-20s epoch %-4d %-42s keys %-10d handover %s\n",
			addr, info.Epoch, owned, n, handoverName(info.State))
		if ho.Target != "" {
			fmt.Printf("%-20s   moving [%#016x, %#016x] to %s: copied %d, mirrored %d, retries %d, resumes %d, watermark %#x\n",
				"", ho.Lo, ho.Hi, ho.Target, ho.Copied, ho.Mirrored, ho.Retries, ho.Resumes, ho.Watermark)
		}
	}
	return nil
}

func handoverName(s uint8) string {
	switch s {
	case cluster.HandoverNone:
		return "none"
	case cluster.HandoverCopying:
		return "copying"
	case cluster.HandoverCopied:
		return "copied"
	case cluster.HandoverFailed:
		return "failed"
	case cluster.HandoverDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", s)
}

func cmdRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	seed := fs.String("seed", "", "any shard server address (used to fetch the current map)")
	loFlag := fs.String("lo", "", "first key of the range to move (decimal or 0x hex)")
	hiFlag := fs.String("hi", "", "last key of the range to move (inclusive)")
	to := fs.String("to", "", "address of the server receiving the range")
	resume := fs.String("resume", "", "resume the suspended handover on this source server")
	abort := fs.String("abort", "", "abandon the handover on this source server")
	timeout := fs.Duration("timeout", 5*time.Minute, "total command budget (bulk copy included)")
	fs.Parse(args)
	if *seed == "" {
		return fmt.Errorf("-seed is required")
	}
	mode := 0
	if *to != "" || *loFlag != "" || *hiFlag != "" {
		mode++
	}
	if *resume != "" {
		mode++
	}
	if *abort != "" {
		mode++
	}
	if mode != 1 {
		return fmt.Errorf("exactly one of -lo/-hi/-to, -resume, or -abort must be given")
	}
	cl, err := client.DialCluster([]string{*seed})
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := withTimeout(*timeout)
	defer cancel()
	switch {
	case *resume != "":
		fmt.Printf("resuming handover on %s...\n", *resume)
		if err := cl.ResumeRebalance(ctx, *resume); err != nil {
			return err
		}
	case *abort != "":
		fmt.Printf("aborting handover on %s...\n", *abort)
		if err := cl.AbortRebalance(ctx, *abort); err != nil {
			return err
		}
		fmt.Println("handover aborted; shard map unchanged")
		return nil
	default:
		lo, err := parseKey("-lo", *loFlag)
		if err != nil {
			return err
		}
		hi, err := parseKey("-hi", *hiFlag)
		if err != nil {
			return err
		}
		if *to == "" {
			return fmt.Errorf("-to is required")
		}
		fmt.Printf("moving [%#x, %#x] to %s...\n", lo, hi, *to)
		if err := cl.Rebalance(ctx, lo, hi, *to); err != nil {
			return err
		}
	}
	fmt.Printf("rebalance complete; new map:\n")
	printMap(cl.Map())
	return nil
}
