package analyzers

import "testing"

func TestCtxCheckClean(t *testing.T) {
	runAnalyzerTest(t, CtxCheck, "ctxgood")
}

func TestCtxCheckViolations(t *testing.T) {
	runAnalyzerTest(t, CtxCheck, "ctxbad")
}
