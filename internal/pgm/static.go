// Package pgm implements a PGM-index (Ferragina & Vinciguerra, VLDB 2020),
// the piecewise-geometric-model learned index the DyTIS paper's related-work
// section discusses: a recursive hierarchy of maximum-error-bounded linear
// segments over sorted keys, made dynamic with the classic logarithmic
// method (geometrically sized sorted runs, each with its own static PGM,
// merged like a binomial counter; deletes are tombstones dropped at merge).
//
// It serves as an extension baseline: a learned index whose update strategy
// (run merging) differs from both ALEX's gapped arrays and XIndex's delta
// buffers, rounding out the design space the paper positions DyTIS against.
package pgm

import (
	"sort"

	"dytis/internal/plr"
)

// Epsilon is the maximum prediction error (in positions) of bottom-level
// segments; upper levels use a tighter bound over far fewer points.
const (
	Epsilon      = 64
	upperEpsilon = 4
)

// segment is one linear model: predicted position = Slope*(key-Key) + Pos.
type segment struct {
	key   uint64 // first key covered
	pos   float64
	slope float64
}

func (s segment) predict(k uint64) int {
	return int(s.pos + s.slope*float64(k-s.key))
}

// static is an immutable PGM over a sorted key array: levels[0] indexes the
// keys, levels[i+1] indexes the first-keys of levels[i], the top level has
// few enough segments to scan.
type static struct {
	levels [][]segment
}

// buildStatic constructs the recursive segmentation for sorted keys.
func buildStatic(keys []uint64) static {
	if len(keys) == 0 {
		return static{}
	}
	var st static
	level := fitSegments(keys, Epsilon)
	st.levels = append(st.levels, level)
	for len(level) > 4 {
		firsts := make([]uint64, len(level))
		for i, s := range level {
			firsts[i] = s.key
		}
		level = fitSegments(firsts, upperEpsilon)
		st.levels = append(st.levels, level)
	}
	return st
}

// fitSegments runs error-bounded PLR over (key, index) and converts the
// result into searchable segments.
func fitSegments(keys []uint64, eps float64) []segment {
	f := plr.NewFitter(eps)
	var prevX float64
	first := true
	for i, k := range keys {
		x := float64(k)
		if !first && x <= prevX {
			continue // float64 collision (keys > 2^53 apart by < ulp)
		}
		f.Add(x, float64(i))
		prevX, first = x, false
	}
	segs := f.Finish()
	out := make([]segment, len(segs))
	for i, s := range segs {
		out[i] = segment{key: uint64(s.StartX), pos: s.StartY, slope: s.Slope}
	}
	return out
}

// approxPos returns the predicted index of k in the underlying array and the
// level-0 epsilon to search around.
func (st *static) approxPos(k uint64, n int) (int, int) {
	if len(st.levels) == 0 {
		return 0, 0
	}
	top := st.levels[len(st.levels)-1]
	// Scan the (tiny) top level for the segment covering k.
	si := 0
	for si+1 < len(top) && top[si+1].key <= k {
		si++
	}
	// Descend: each level's prediction locates the segment index in the
	// level below within its epsilon.
	for li := len(st.levels) - 1; li > 0; li-- {
		below := st.levels[li-1]
		p := clamp(top[si].predict(k), 0, len(below)-1)
		lo := clamp(p-upperEpsilon-1, 0, len(below)-1)
		hi := clamp(p+upperEpsilon+1, 0, len(below)-1)
		// Find the last segment with key <= k inside [lo, hi].
		si = lo
		for j := lo; j <= hi; j++ {
			if below[j].key <= k {
				si = j
			} else {
				break
			}
		}
		// Guard against prediction windows that miss (rare float edge):
		// fall back to binary search over the whole level.
		if (si == lo && below[si].key > k) || (si == hi && hi+1 < len(below) && below[hi+1].key <= k) {
			si = sort.Search(len(below), func(j int) bool { return below[j].key > k }) - 1
			if si < 0 {
				si = 0
			}
		}
		top = below
	}
	p := clamp(top[si].predict(k), 0, n-1)
	return p, Epsilon
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
